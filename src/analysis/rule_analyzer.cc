#include "analysis/rule_analyzer.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace ariel {

const char* FindingKindToString(FindingKind kind) {
  switch (kind) {
    case FindingKind::kTerminationError:
    case FindingKind::kTerminationWarning:
      return "termination";
    case FindingKind::kPriorityContradiction: return "priority";
    case FindingKind::kNonConfluent: return "confluence";
    case FindingKind::kDeadRule: return "dead-rule";
  }
  return "?";
}

const char* AnalyzeOnInstallToString(AnalyzeOnInstall policy) {
  switch (policy) {
    case AnalyzeOnInstall::kOff: return "off";
    case AnalyzeOnInstall::kWarn: return "warn";
    case AnalyzeOnInstall::kError: return "error";
  }
  return "?";
}

Result<AnalyzeOnInstall> AnalyzeOnInstallFromString(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "off") return AnalyzeOnInstall::kOff;
  if (lower == "warn") return AnalyzeOnInstall::kWarn;
  if (lower == "error") return AnalyzeOnInstall::kError;
  return Status::InvalidArgument("unknown analyze policy \"" +
                                 std::string(name) +
                                 "\" (expected off, warn, or error)");
}

namespace {

// ---------------------------------------------------------------------------
// Tarjan SCC over a subset of the trigger edges
// ---------------------------------------------------------------------------

struct SccResult {
  std::vector<int> comp;  // per node; ids assigned in completion order
  int count = 0;
  /// SCCs that contain a cycle: size > 1, or a single node with a self-loop
  /// among the considered edges.
  std::vector<bool> cyclic;
};

template <typename EdgeFilter>
SccResult ComputeSccs(const TriggerGraph& graph, EdgeFilter include) {
  const size_t n = graph.rules().size();
  SccResult result;
  result.comp.assign(n, -1);

  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  int next_index = 0;

  // Iterative Tarjan (explicit frame stack keeps deep chains safe).
  struct Frame {
    size_t node;
    size_t edge_pos = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] >= 0) continue;
    std::vector<Frame> frames{{root}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::vector<size_t>& out = graph.out_edges(f.node);
      bool descended = false;
      while (f.edge_pos < out.size()) {
        const TriggerEdge& e = graph.edges()[out[f.edge_pos]];
        ++f.edge_pos;
        if (!include(e)) continue;
        if (index[e.to] < 0) {
          index[e.to] = lowlink[e.to] = next_index++;
          stack.push_back(e.to);
          on_stack[e.to] = true;
          frames.push_back({e.to});
          descended = true;
          break;
        }
        if (on_stack[e.to]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[e.to]);
        }
      }
      if (descended) continue;
      const size_t node = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        size_t member;
        size_t size = 0;
        do {
          member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          result.comp[member] = result.count;
          ++size;
        } while (member != node);
        result.cyclic.push_back(size > 1);
        ++result.count;
      }
    }
  }

  // Single-node SCCs are cyclic when a considered self-loop exists.
  for (const TriggerEdge& e : graph.edges()) {
    if (e.from == e.to && include(e)) {
      result.cyclic[result.comp[e.from]] = true;
    }
  }
  return result;
}

/// Walks a cycle inside one SCC, following only `include`-d edges whose
/// endpoints stay in the component. Returns the edge indices of the cycle
/// (the last edge closes the loop).
template <typename EdgeFilter>
std::vector<size_t> FindCycleEdges(const TriggerGraph& graph,
                                   const SccResult& sccs, int comp,
                                   size_t start, EdgeFilter include) {
  std::vector<size_t> path_edges;
  std::map<size_t, size_t> pos;  // node -> index into the walk
  pos[start] = 0;
  size_t cur = start;
  while (true) {
    std::optional<size_t> next_edge;
    for (size_t ei : graph.out_edges(cur)) {
      const TriggerEdge& e = graph.edges()[ei];
      if (sccs.comp[e.to] == comp && include(e)) {
        next_edge = ei;
        break;
      }
    }
    if (!next_edge.has_value()) return path_edges;  // defensive
    const TriggerEdge& e = graph.edges()[*next_edge];
    path_edges.push_back(*next_edge);
    if (auto it = pos.find(e.to); it != pos.end()) {
      // Trim the lead-in before the first repeated node.
      path_edges.erase(path_edges.begin(),
                       path_edges.begin() + static_cast<long>(it->second));
      return path_edges;
    }
    pos[e.to] = path_edges.size();
    cur = e.to;
  }
}

std::string RenderChain(const TriggerGraph& graph,
                        const std::vector<size_t>& cycle_edges) {
  std::string out = graph.rules()[graph.edges()[cycle_edges.front()].from].name;
  for (size_t ei : cycle_edges) {
    out += " -> " + graph.rules()[graph.edges()[ei].to].name;
  }
  return out;
}

std::string Num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os << std::setprecision(4) << v;
  return os.str();
}

// ---------------------------------------------------------------------------
// Dead-rule detection
// ---------------------------------------------------------------------------

/// Type-order class in the Value total order: null < bool < numeric < string.
int TypeClass(DataType type) {
  switch (type) {
    case DataType::kNull: return 0;
    case DataType::kBool: return 1;
    case DataType::kInt:
    case DataType::kFloat: return 2;
    case DataType::kString: return 3;
  }
  return 2;
}

struct Interval {
  std::optional<Value> lower;
  bool lower_strict = false;
  std::optional<Value> upper;
  bool upper_strict = false;

  bool Empty() const {
    if (!lower || !upper) return false;
    const int c = lower->Compare(*upper);
    if (c > 0) return true;
    return c == 0 && (lower_strict || upper_strict);
  }
};

/// The `colref OP literal` shape (either operand order; mirrored so the
/// column is on the left). Returns false for anything else.
bool AsColumnVsLiteral(const Expr& conjunct, const ColumnRefExpr** col,
                       const Value** literal, BinaryOp* op) {
  if (conjunct.kind != ExprKind::kBinary) return false;
  const auto& bin = static_cast<const BinaryExpr&>(conjunct);
  if (!IsComparison(bin.op)) return false;
  if (bin.lhs->kind == ExprKind::kColumnRef &&
      bin.rhs->kind == ExprKind::kLiteral) {
    *col = static_cast<const ColumnRefExpr*>(bin.lhs.get());
    *literal = &static_cast<const LiteralExpr*>(bin.rhs.get())->value;
    *op = bin.op;
    return true;
  }
  if (bin.lhs->kind == ExprKind::kLiteral &&
      bin.rhs->kind == ExprKind::kColumnRef) {
    *col = static_cast<const ColumnRefExpr*>(bin.rhs.get());
    *literal = &static_cast<const LiteralExpr*>(bin.lhs.get())->value;
    *op = MirrorComparison(bin.op);
    return true;
  }
  return false;
}

/// Truth of `x OP y` when the sign of Compare(x, y) is known a priori
/// (cross-type-class comparisons are decided by the type tag alone).
bool ComparisonOutcome(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq: return cmp == 0;
    case BinaryOp::kNe: return cmp != 0;
    case BinaryOp::kLt: return cmp < 0;
    case BinaryOp::kLe: return cmp <= 0;
    case BinaryOp::kGt: return cmp > 0;
    case BinaryOp::kGe: return cmp >= 0;
    default: return true;
  }
}

/// First provable-unsatisfiability reason for this variable's selection, or
/// nullopt. Checks, per conjunct: literal-false conjuncts, literal-literal
/// comparisons, schema type-class mismatches, and the per-attribute
/// interval closure over `attr OP numeric-literal` conjuncts.
std::optional<std::string> DeadReason(const ReadVar& v,
                                      const Catalog& catalog) {
  const HeapRelation* relation = catalog.GetRelation(v.relation);
  const Schema* schema = relation != nullptr ? &relation->schema() : nullptr;

  if (schema != nullptr) {
    for (const std::string& attr : v.attrs) {
      if (schema->IndexOf(attr) < 0) {
        return "condition reads " + v.relation + "." + attr +
               ", which is not in the schema";
      }
    }
  }

  std::map<std::string, Interval> intervals;
  for (const ExprPtr& conjunct : v.selections) {
    if (conjunct->kind == ExprKind::kLiteral) {
      const Value& val = static_cast<const LiteralExpr&>(*conjunct).value;
      if (val.is_bool() && !val.bool_value()) {
        return "selection conjunct is constant false";
      }
      continue;
    }
    if (conjunct->kind != ExprKind::kBinary) continue;
    const auto& bin = static_cast<const BinaryExpr&>(*conjunct);
    if (!IsComparison(bin.op)) continue;

    if (bin.lhs->kind == ExprKind::kLiteral &&
        bin.rhs->kind == ExprKind::kLiteral) {
      const Value& a = static_cast<const LiteralExpr&>(*bin.lhs).value;
      const Value& b = static_cast<const LiteralExpr&>(*bin.rhs).value;
      if (!ComparisonOutcome(bin.op, a.Compare(b))) {
        return "\"" + conjunct->ToString() + "\" is constant false";
      }
      continue;
    }

    const ColumnRefExpr* col = nullptr;
    const Value* literal = nullptr;
    BinaryOp op = BinaryOp::kEq;
    if (!AsColumnVsLiteral(*conjunct, &col, &literal, &op)) continue;
    if (ToLower(col->tuple_var) != v.var_name || col->is_all()) continue;

    DataType attr_type = DataType::kNull;
    if (schema != nullptr) {
      const int idx = schema->IndexOf(ToLower(col->attribute));
      if (idx < 0) continue;  // already reported above
      attr_type = schema->attribute(static_cast<size_t>(idx)).type;
    }

    // Cross-type-class comparison: decided by the Value total order.
    const int attr_class = TypeClass(attr_type);
    const int lit_class = TypeClass(literal->type());
    if (schema != nullptr && attr_class != lit_class) {
      if (!ComparisonOutcome(op, attr_class < lit_class ? -1 : 1)) {
        return "\"" + conjunct->ToString() + "\" can never hold: " +
               v.relation + "." + ToLower(col->attribute) + " is " +
               DataTypeToString(attr_type) + " but the literal is " +
               DataTypeToString(literal->type());
      }
      continue;
    }

    // Same-class bounds: close the interval per attribute. `previous`
    // reads get their own key — old and new values are distinct.
    const std::string key =
        (col->previous ? "previous " : "") + ToLower(col->attribute);
    Interval& iv = intervals[key];
    auto tighten_lower = [&](const Value& val, bool strict) {
      if (!iv.lower || val.Compare(*iv.lower) > 0 ||
          (val == *iv.lower && strict)) {
        iv.lower = val;
        iv.lower_strict = strict;
      }
    };
    auto tighten_upper = [&](const Value& val, bool strict) {
      if (!iv.upper || val.Compare(*iv.upper) < 0 ||
          (val == *iv.upper && strict)) {
        iv.upper = val;
        iv.upper_strict = strict;
      }
    };
    switch (op) {
      case BinaryOp::kEq:
        tighten_lower(*literal, false);
        tighten_upper(*literal, false);
        break;
      case BinaryOp::kLt: tighten_upper(*literal, true); break;
      case BinaryOp::kLe: tighten_upper(*literal, false); break;
      case BinaryOp::kGt: tighten_lower(*literal, true); break;
      case BinaryOp::kGe: tighten_lower(*literal, false); break;
      default: break;  // != constrains nothing the interval can use
    }
    if (iv.Empty()) {
      return "constraints on " + v.relation + "." + key +
             " are contradictory (empty interval at \"" +
             conjunct->ToString() + "\")";
    }
  }
  return std::nullopt;
}

}  // namespace

size_t RuleSetAnalysis::num_errors() const {
  size_t n = 0;
  for (const Finding& f : findings) n += f.is_error() ? 1 : 0;
  return n;
}

size_t RuleSetAnalysis::num_warnings() const {
  return findings.size() - num_errors();
}

Result<RuleSetAnalysis> AnalyzeRuleSet(const RuleManager& rules,
                                       const Catalog& catalog) {
  std::vector<const Rule*> installed;
  for (const std::string& name : rules.RuleNames()) {
    const Rule* rule = rules.GetRule(name);
    if (rule != nullptr) installed.push_back(rule);
  }

  RuleSetAnalysis analysis;
  ARIEL_ASSIGN_OR_RETURN(
      analysis.graph, TriggerGraph::Build(installed, catalog, rules.policy()));
  const TriggerGraph& graph = analysis.graph;
  const std::vector<AnalyzedRule>& nodes = graph.rules();

  const auto all_edges = [](const TriggerEdge&) { return true; };
  const auto definite_edges = [](const TriggerEdge& e) { return e.definite; };
  const SccResult full = ComputeSccs(graph, all_edges);
  const SccResult definite = ComputeSccs(graph, definite_edges);

  // --- (a) Termination -----------------------------------------------------
  // One finding per cyclic SCC; ERROR when the SCC contains a cycle of
  // definite edges (provably re-triggering, and definite edges never leave
  // a halt-ing rule), WARNING otherwise.
  std::vector<std::vector<size_t>> scc_members(
      static_cast<size_t>(full.count));
  for (size_t i = 0; i < nodes.size(); ++i) {
    scc_members[static_cast<size_t>(full.comp[i])].push_back(i);
  }
  for (int c = full.count - 1; c >= 0; --c) {  // reverse = creation order
    if (!full.cyclic[static_cast<size_t>(c)]) continue;
    const std::vector<size_t>& members =
        scc_members[static_cast<size_t>(c)];
    std::optional<size_t> definite_start;
    for (size_t m : members) {
      if (definite.cyclic[static_cast<size_t>(definite.comp[m])]) {
        definite_start = m;
        break;
      }
    }
    Finding f;
    std::vector<size_t> cycle;
    if (definite_start.has_value()) {
      f.kind = FindingKind::kTerminationError;
      const int dc = definite.comp[*definite_start];
      cycle = FindCycleEdges(
          graph, definite, dc, *definite_start,
          [&](const TriggerEdge& e) { return e.definite; });
    } else {
      f.kind = FindingKind::kTerminationWarning;
      cycle = FindCycleEdges(graph, full, c, members.front(), all_edges);
    }
    if (cycle.empty()) continue;  // defensive
    const TriggerEdge& closing = graph.edges()[cycle.back()];
    std::set<std::string> names;
    for (size_t ei : cycle) {
      names.insert(nodes[graph.edges()[ei].from].name);
    }
    f.rules.assign(names.begin(), names.end());
    std::string what = std::string(WriteOpKindToString(closing.op)) + " " +
                       closing.relation;
    if (!closing.attribute.empty()) what += "." + closing.attribute;
    f.message = std::string(definite_start ? "definite cycle "
                                           : "possible cycle ") +
                RenderChain(graph, cycle) + ", closed by " + what +
                (definite_start
                     ? "; every firing provably re-triggers the next rule"
                     : "; the analysis cannot prove the cascade stops");
    analysis.findings.push_back(std::move(f));
  }

  // --- (b) Stratification --------------------------------------------------
  // Condensation longest path from the roots; Tarjan completion ids are a
  // reverse topological order, so descending ids visit producers first.
  std::vector<int> scc_stratum(static_cast<size_t>(full.count), 0);
  for (int c = full.count - 1; c >= 0; --c) {
    for (size_t node : scc_members[static_cast<size_t>(c)]) {
      for (size_t ei : graph.out_edges(node)) {
        const TriggerEdge& e = graph.edges()[ei];
        const int target = full.comp[e.to];
        if (target == c) continue;
        scc_stratum[static_cast<size_t>(target)] =
            std::max(scc_stratum[static_cast<size_t>(target)],
                     scc_stratum[static_cast<size_t>(c)] + 1);
      }
    }
  }
  analysis.strata.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    analysis.strata[i] = scc_stratum[static_cast<size_t>(full.comp[i])];
  }

  // Priority contradictions: a consumer that outranks its producer fires
  // first under conflict resolution even though the dependency order says
  // it consumes the producer's output.
  std::set<std::pair<size_t, size_t>> reported_pairs;
  for (const TriggerEdge& e : graph.edges()) {
    if (full.comp[e.from] == full.comp[e.to]) continue;
    if (nodes[e.to].priority <= nodes[e.from].priority) continue;
    if (!reported_pairs.insert({e.from, e.to}).second) continue;
    Finding f;
    f.kind = FindingKind::kPriorityContradiction;
    f.rules = {nodes[e.from].name, nodes[e.to].name};
    f.message = nodes[e.to].name + " (priority " +
                Num(nodes[e.to].priority) + ") outranks " +
                nodes[e.from].name + " (priority " +
                Num(nodes[e.from].priority) +
                "), which produces its input via " +
                WriteOpKindToString(e.op) + " " + e.relation +
                "; priorities contradict the dependency order";
    analysis.findings.push_back(std::move(f));
  }

  // --- (c) Confluence ------------------------------------------------------
  // Equal-priority pairs whose firings do not commute. Append-append
  // commutes; a one-directional producer -> consumer edge converges via the
  // cascade. Flagged: overlapping replaces, delete vs. read-relevant
  // replace, and mutual re-triggering.
  std::set<std::pair<size_t, size_t>> mutual;
  for (const TriggerEdge& e : graph.edges()) {
    if (e.from != e.to) mutual.insert({e.from, e.to});
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i].priority != nodes[j].priority) continue;
      std::string reason;
      for (const WriteOp& wi : nodes[i].writes) {
        for (const WriteOp& wj : nodes[j].writes) {
          if (wi.relation != wj.relation) continue;
          if (wi.kind == WriteOp::Kind::kReplace &&
              wj.kind == WriteOp::Kind::kReplace) {
            for (const auto& [attr, expr] : wi.assignments) {
              for (const auto& [attr2, expr2] : wj.assignments) {
                if (attr == attr2) {
                  reason = "both replace " + wi.relation + "." + attr;
                  break;
                }
              }
              if (!reason.empty()) break;
            }
          } else if ((wi.kind == WriteOp::Kind::kDelete &&
                      wj.kind == WriteOp::Kind::kReplace) ||
                     (wi.kind == WriteOp::Kind::kReplace &&
                      wj.kind == WriteOp::Kind::kDelete)) {
            const WriteOp& del = wi.kind == WriteOp::Kind::kDelete ? wi : wj;
            const WriteOp& rep = wi.kind == WriteOp::Kind::kDelete ? wj : wi;
            const AnalyzedRule& deleter =
                wi.kind == WriteOp::Kind::kDelete ? nodes[i] : nodes[j];
            for (const ReadVar& v : deleter.reads) {
              if (v.relation != del.relation) continue;
              for (const auto& [attr, expr] : rep.assignments) {
                if (v.whole_tuple ||
                    std::find(v.attrs.begin(), v.attrs.end(), attr) !=
                        v.attrs.end()) {
                  reason = deleter.name + " deletes from " + del.relation +
                           " by reading " + del.relation +
                           (v.whole_tuple ? "" : "." + attr) +
                           ", which the other rule replaces";
                  break;
                }
              }
              if (!reason.empty()) break;
            }
          }
          if (!reason.empty()) break;
        }
        if (!reason.empty()) break;
      }
      if (reason.empty() && mutual.count({i, j}) > 0 &&
          mutual.count({j, i}) > 0) {
        reason = "each rule's writes re-trigger the other";
      }
      if (reason.empty()) continue;
      Finding f;
      f.kind = FindingKind::kNonConfluent;
      f.rules = {nodes[i].name, nodes[j].name};
      f.message = nodes[i].name + " and " + nodes[j].name +
                  " share priority " + Num(nodes[i].priority) + " and " +
                  reason + "; the final state depends on firing order";
      analysis.findings.push_back(std::move(f));
    }
  }

  // --- (d) Dead rules ------------------------------------------------------
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const ReadVar& v : nodes[i].reads) {
      std::optional<std::string> reason = DeadReason(v, catalog);
      if (!reason) continue;
      Finding f;
      f.kind = FindingKind::kDeadRule;
      f.rules = {nodes[i].name};
      f.message = nodes[i].name + " can never fire: " + *reason;
      analysis.findings.push_back(std::move(f));
      break;  // one finding per rule
    }
  }

  return analysis;
}

namespace {

std::string RenderFinding(const Finding& f) {
  return std::string(f.is_error() ? "ERROR" : "WARNING") + " [" +
         FindingKindToString(f.kind) + "] " + f.message;
}

}  // namespace

std::string RuleSetAnalysis::Render(bool include_costs) const {
  const std::vector<AnalyzedRule>& nodes = graph.rules();
  std::ostringstream os;
  os << "rule-set analysis: " << nodes.size() << " rule"
     << (nodes.size() == 1 ? "" : "s") << ", " << graph.edges().size()
     << " trigger edge" << (graph.edges().size() == 1 ? "" : "s") << ", "
     << graph.pruned().size() << " pruned, " << num_errors() << " error"
     << (num_errors() == 1 ? "" : "s") << ", " << num_warnings()
     << " warning" << (num_warnings() == 1 ? "" : "s") << "\n";
  for (const auto& [name, error] : graph.skipped()) {
    os << "  skipped " << name << ": " << error << "\n";
  }

  os << "trigger graph:\n";
  if (graph.edges().empty()) {
    os << "  (no edges)\n";
  }
  for (const TriggerEdge& e : graph.edges()) {
    os << "  " << e.ToString(nodes) << (e.definite ? " [definite]" : "")
       << "\n";
  }
  for (const PrunedEdge& p : graph.pruned()) {
    os << "  pruned " << nodes[p.from].name << " -/-> " << nodes[p.to].name
       << ": " << p.reason << "\n";
  }

  if (!nodes.empty()) {
    os << "strata (cyclic rules share a stratum):\n";
    const int max_stratum =
        *std::max_element(strata.begin(), strata.end());
    for (int s = 0; s <= max_stratum; ++s) {
      os << "  " << s << ":";
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (strata[i] == s) os << " " << nodes[i].name;
      }
      os << "\n";
    }
  }

  os << "findings:\n";
  if (findings.empty()) {
    os << "  (none)\n";
  }
  for (const Finding& f : findings) {
    os << "  " << RenderFinding(f) << "\n";
  }

  if (include_costs && !nodes.empty()) {
    os << "match costs (estimated candidates per variable; worst-case "
          "join work per token):\n";
    for (const AnalyzedRule& rule : nodes) {
      os << "  " << rule.name << ":";
      double worst = 0;
      for (size_t i = 0; i < rule.reads.size(); ++i) {
        const ReadVar& v = rule.reads[i];
        os << " " << v.var_name << "~" << Num(v.estimated_matches);
        double others = 1;
        for (size_t j = 0; j < rule.reads.size(); ++j) {
          if (j != i) others *= rule.reads[j].estimated_matches;
        }
        worst += v.estimated_matches * others;
      }
      os << "; worst-case " << Num(worst);
      if (rule.active) {
        os << "; fired " << rule.times_fired << ", instantiations "
           << rule.lifetime_instantiations;
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string RuleSetAnalysis::DescribeRule(const std::string& name) const {
  std::optional<size_t> idx = graph.IndexOf(name);
  if (!idx.has_value()) return "";
  const std::vector<AnalyzedRule>& nodes = graph.rules();
  std::ostringstream os;
  os << "analysis:\n  triggers:\n";
  if (graph.out_edges(*idx).empty()) os << "    (none)\n";
  for (size_t ei : graph.out_edges(*idx)) {
    const TriggerEdge& e = graph.edges()[ei];
    os << "    -> " << nodes[e.to].name << " ("
       << WriteOpKindToString(e.op) << " " << e.relation
       << (e.attribute.empty() ? "" : "." + e.attribute) << ")"
       << (e.definite ? " [definite]" : "") << "\n";
  }
  os << "  triggered by:\n";
  if (graph.in_edges(*idx).empty()) os << "    (none)\n";
  for (size_t ei : graph.in_edges(*idx)) {
    const TriggerEdge& e = graph.edges()[ei];
    os << "    <- " << nodes[e.from].name << " ("
       << WriteOpKindToString(e.op) << " " << e.relation
       << (e.attribute.empty() ? "" : "." + e.attribute) << ")"
       << (e.definite ? " [definite]" : "") << "\n";
  }
  os << "  warnings:\n";
  bool any = false;
  const std::string lower = ToLower(name);
  for (const Finding& f : findings) {
    if (std::find(f.rules.begin(), f.rules.end(), lower) == f.rules.end()) {
      continue;
    }
    os << "    " << RenderFinding(f) << "\n";
    any = true;
  }
  if (!any) os << "    (none)\n";
  return os.str();
}

}  // namespace ariel
