#ifndef ARIEL_NETWORK_TOKEN_H_
#define ARIEL_NETWORK_TOKEN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "parser/ast.h"
#include "storage/tuple.h"

namespace ariel {

/// The four token kinds of §4.3 of the paper: plain insert/delete tokens and
/// the transition (Δ) tokens carrying (new, old) pairs.
enum class TokenKind : uint8_t {
  kPlus,        // + : insertion of a new tuple value
  kMinus,       // − : deletion of a tuple value
  kDeltaPlus,   // Δ+: insertion of a transition (new/old) pair
  kDeltaMinus,  // Δ−: retraction of a previously emitted transition pair
};

const char* TokenKindToString(TokenKind kind);

/// The event specifier attached to (most) tokens: append, delete, or
/// replace(target-list). On-conditions in the top-level network are the only
/// consumers (§4.3.1). A token may carry no specifier at all — the paper's
/// "simple − token" emitted for the first modification of a pre-existing
/// tuple, which must not wake on-delete rules.
class TokenEvent {
 public:
  /// Immutable, shareable attribute list. A bulk replace touches the same
  /// attributes for every tuple, so the Δ-set bookkeeping interns one list
  /// and every token of the command aliases it (no per-token allocation).
  using AttrList = std::shared_ptr<const std::vector<std::string>>;

  TokenEvent() = default;
  TokenEvent(EventKind kind, std::vector<std::string> attrs);

  /// Builds an event aliasing an already-interned attribute list.
  static TokenEvent WithShared(EventKind kind, AttrList attrs);

  EventKind kind = EventKind::kAppend;

  /// For replace: which attributes the command assigned (empty otherwise).
  const std::vector<std::string>& updated_attrs() const;
  const AttrList& shared_attrs() const { return attrs_; }

 private:
  AttrList attrs_;
};

/// One unit of change flowing through the discrimination network.
struct Token {
  TokenKind kind = TokenKind::kPlus;
  uint32_t relation_id = 0;
  TupleId tid;
  /// The tuple value pattern conditions test: the (new) tuple for +/Δ+, the
  /// departing value for −, and the retracted pair's new part for Δ−.
  Tuple value;
  /// The old value of the pair; present only for Δ tokens.
  Tuple previous;
  std::optional<TokenEvent> event;

  bool is_delta() const {
    return kind == TokenKind::kDeltaPlus || kind == TokenKind::kDeltaMinus;
  }
  bool is_insertion() const {
    return kind == TokenKind::kPlus || kind == TokenKind::kDeltaPlus;
  }

  std::string ToString() const;
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_TOKEN_H_
