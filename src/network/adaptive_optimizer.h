#ifndef ARIEL_NETWORK_ADAPTIVE_OPTIMIZER_H_
#define ARIEL_NETWORK_ADAPTIVE_OPTIMIZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "network/rule_network.h"

namespace ariel {

class SelectionNetwork;

// ---------------------------------------------------------------------------
// Adaptive network optimization (ROADMAP item 3; the paper's §6 observation
// that the best network shape — TREAT vs Rete, stored vs virtual α-memories,
// join order — depends on selectivities and relation sizes that only emerge
// at run time).
//
// The optimizer consumes per-rule observations (live α-memory sizes,
// selection-network selectivities, per-variable arrival counts) at
// quiescence points, prices every candidate network shape with a unit-cost
// model, and asks for a re-plan when the best candidate undercuts the
// current shape by a hysteresis margin. Re-planning itself is the rule
// manager's job (RuleManager::ReplanRule): the network is a pure function of
// base data + rules, so a rule's α/β state can be rebuilt from heap
// relations while the history-dependent conflict set is carried over via
// PNode::CaptureState/RestoreState.
// ---------------------------------------------------------------------------

/// One target network shape for a rule — every dimension the engine can
/// re-plan at run time.
struct NetworkStrategy {
  /// Join algorithm (pattern rules only; rules with dynamic memories always
  /// run TREAT regardless — RuleNetwork::Init enforces the fallback).
  JoinBackend backend = JoinBackend::kTreat;

  /// Stored-vs-virtual choice for pattern variables. kThreshold carries a
  /// per-rule cardinality split so individual memories can be promoted or
  /// demoted: a memory whose estimated cardinality is at least
  /// `virtual_threshold` becomes virtual, smaller ones stay stored.
  enum class AlphaChoice : uint8_t { kAllStored, kAllVirtual, kThreshold };
  AlphaChoice alpha = AlphaChoice::kAllStored;
  double virtual_threshold = 0;

  /// Resolved per-variable decision (indexed by α ordinal; 1 = stored).
  /// This — not the threshold, which is derived from observed statistics
  /// the rule compiler does not see — is what ReplanRule applies, and what
  /// strategy equality compares. Empty means "derive from `alpha`".
  std::vector<uint8_t> alpha_stored;

  /// Hash join indexes over stored α-memories / Rete β-levels.
  bool join_hash_indexes = true;

  /// Columnar candidate prefilters on stored-α scan fallbacks.
  bool columnar_exec = true;

  /// Explicit TREAT probe order (variable ordinals, a permutation of the
  /// rule's variables): ExtendJoin binds the earliest unbound entry first.
  /// Empty keeps the built-in connected-then-smallest heuristic. Ignored
  /// under Rete, whose β-chain order is fixed by the variable order.
  std::vector<size_t> join_order;

  std::string ToString() const;
};

bool operator==(const NetworkStrategy& a, const NetworkStrategy& b);
inline bool operator!=(const NetworkStrategy& a, const NetworkStrategy& b) {
  return !(a == b);
}

/// Statistics snapshot for one tuple variable of a rule.
struct VarObservation {
  std::string name;
  AlphaKind kind = AlphaKind::kStored;
  uint32_t relation_id = 0;
  size_t relation_size = 0;
  /// Entries currently materialized (stored/dynamic memories; 0 when
  /// virtual).
  size_t stored_entries = 0;
  /// Observed fraction of the relation's tokens admitted by the selection
  /// predicate (selection-network tested/matched counters), falling back to
  /// the materialized fraction, then to 1.
  double selectivity = 1.0;
  /// An equality join conjunct keys this variable: a stored memory gets a
  /// hash index, a virtual one may have a B+tree probe path.
  bool has_equijoin = false;
  /// The base relation carries a B+tree on an equijoin attribute, so a
  /// virtual memory is probed in O(log n) instead of scanned.
  bool has_btree_path = false;
  /// Pattern variables can flip stored↔virtual; event/transition/simple
  /// memories keep their compiler-assigned kind.
  bool replannable = true;
  /// Lifetime token arrivals at this α-memory (RuleNetwork::MatchStats).
  /// AdaptiveOptimizer::Evaluate rebases these onto the window since the
  /// rule's last re-plan before pricing.
  uint64_t arrivals = 0;
};

/// Statistics snapshot for one rule, as collected at a quiescence point.
struct RuleObservation {
  std::string rule;
  JoinBackend backend = JoinBackend::kTreat;
  bool join_hash_indexes = true;
  bool columnar_exec = true;
  /// No event/transition memories: Rete is available and priming can
  /// recompute the P-node.
  bool pure_pattern = true;
  uint64_t arrivals = 0;
  uint64_t plus_tokens = 0;
  uint64_t minus_tokens = 0;
  /// Explicit TREAT probe order currently installed (empty = heuristic).
  std::vector<size_t> planned_join_order;
  std::vector<VarObservation> vars;
};

/// Builds a RuleObservation from a live network. `selection` supplies
/// observed per-condition selectivities (may be null: estimation falls back
/// to materialized fractions).
RuleObservation CollectObservation(const RuleNetwork& network,
                                   const SelectionNetwork* selection);

/// Tuning knobs (DatabaseOptions.adaptive_* surface these).
struct AdaptiveConfig {
  /// Hysteresis: re-plan only when the best candidate's modeled cost is
  /// below current_cost * (1 - min_gain). Negative values force a re-plan
  /// at every evaluation (test/bench mode).
  double min_gain = 0.25;
  /// A rule must absorb this many tokens between its re-plans.
  uint64_t min_tokens = 64;
  /// Baseline row/column break-even (mirrors OptimizerOptions).
  size_t columnar_min_rows = 64;
};

/// The statistics-driven cost model plus per-rule re-plan bookkeeping.
/// Single-threaded (engine thread at quiescence); no internal locking.
class AdaptiveOptimizer {
 public:
  explicit AdaptiveOptimizer(AdaptiveConfig config = {}) : config_(config) {}

  const AdaptiveConfig& config() const { return config_; }

  struct Decision {
    bool replan = false;
    /// Target shape (meaningful when replan is true).
    NetworkStrategy strategy;
    /// The shape the rule currently runs, as read from the observation.
    NetworkStrategy current;
    double current_cost = 0;
    double best_cost = 0;
    std::string reason;
  };

  /// Cheap per-command gate in front of Evaluate: true once the rule has
  /// absorbed min_tokens/4 fresh tokens since the last evaluation (always
  /// true when min_tokens is 0). Keeps the steady-state cost of an adaptive
  /// engine at one counter comparison per quiescence point instead of a
  /// full model evaluation.
  bool ShouldEvaluate(const std::string& rule, uint64_t arrivals);

  /// Prices the current shape and the best candidate, applying hysteresis
  /// (min_gain margin + min_tokens gate). Token counters are windowed to
  /// the traffic since the rule's last re-plan, so a workload shift is
  /// priced on its own statistics rather than diluted by lifetime history.
  /// Never asks to re-plan a rule onto the shape it already runs — except
  /// under a negative min_gain, which forces a (possibly in-place) rebuild
  /// whenever the rule has modeled traffic; the equivalence tests lean on
  /// that.
  Decision Evaluate(const RuleObservation& obs);

  /// Records that the caller executed a re-plan for `rule`: arms the
  /// min_tokens gate against flip-flopping and snapshots the observation's
  /// token counters as the baseline for the next statistics window.
  void NoteReplanned(const RuleObservation& obs);

  uint64_t replans(const std::string& rule) const;

  /// Modeled per-window cost of running `obs`'s workload under shape `s`:
  /// arrival-weighted join probe costs + α upkeep + β maintenance + an
  /// amortized storage rent on materialized entries. Unit-less; only
  /// comparisons between shapes for the same observation are meaningful.
  /// Exposed for the unit tests.
  static double ModelCost(const RuleObservation& obs,
                          const NetworkStrategy& s,
                          const AdaptiveConfig& config);

  /// The shape `obs` currently runs, lifted into strategy form.
  static NetworkStrategy CurrentStrategy(const RuleObservation& obs);

  /// Cheapest candidate shape under the cost model (enumerates backend ×
  /// α-choice × hash × columnar and derives the TREAT join order for
  /// 3+-variable rules). `best_cost` receives its modeled cost.
  NetworkStrategy BestStrategy(const RuleObservation& obs,
                               double* best_cost) const;

 private:
  struct RuleState {
    /// Counter snapshot at the start of the current statistics window —
    /// Evaluate subtracts it from incoming observations so the model sees
    /// only the window's traffic. Reset at every re-plan, and slid forward
    /// when the window outgrows 8 cooldowns of tokens, so a workload shift
    /// becomes visible within a bounded token count instead of being
    /// diluted by unbounded history.
    bool has_baseline = false;
    uint64_t base_arrivals = 0;
    uint64_t base_plus = 0;
    uint64_t base_minus = 0;
    std::vector<uint64_t> base_var_arrivals;
    uint64_t last_evaluated_arrivals = 0;
    uint64_t replans = 0;
  };

  /// Returns `obs` with token counters rebased onto the rule's current
  /// statistics window (no-op before the first baseline).
  RuleObservation Windowed(const RuleObservation& obs,
                           const RuleState& state) const;

  /// Starts a fresh statistics window at `obs`'s counters.
  static void Rebase(RuleState* state, const RuleObservation& obs);

  AdaptiveConfig config_;
  std::map<std::string, RuleState> rules_;
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_ADAPTIVE_OPTIMIZER_H_
