#include "network/discrimination_network.h"

#include <algorithm>

#include "util/metrics.h"

namespace ariel {

Status DiscriminationNetwork::AddRule(RuleNetwork* rule) {
  ARIEL_RETURN_NOT_OK(selection_.AddRule(rule));
  rules_.push_back(rule);
  return Status::OK();
}

void DiscriminationNetwork::RemoveRule(RuleNetwork* rule) {
  selection_.RemoveRule(rule);
  rules_.erase(std::remove(rules_.begin(), rules_.end(), rule), rules_.end());
  dirty_dynamic_rules_.erase(std::remove(dirty_dynamic_rules_.begin(),
                                         dirty_dynamic_rules_.end(), rule),
                             dirty_dynamic_rules_.end());
}

Status DiscriminationNetwork::ProcessToken(const Token& token) {
  ScopedTimer timer(Metrics().token_process_ns);
  ++tokens_processed_;
  if (token_listener_) token_listener_(token);
  ARIEL_ASSIGN_OR_RETURN(std::vector<ConditionMatch> matches,
                         selection_.Match(token));
  RuleNetwork::ProcessedMemories processed;
  for (const ConditionMatch& match : matches) {
    // The memory joins the token's ProcessedMemories set at arrival, before
    // its joins run (§4.2) — this is what makes self-joins through virtual
    // α-memories produce each pairing exactly once.
    processed.insert(match.rule->alpha(match.alpha_ordinal));
    ++arrivals_;
    Metrics().alpha_arrivals.Increment();
    if (match.rule->has_dynamic_memories() && !match.rule->dirty_dynamic()) {
      match.rule->set_dirty_dynamic(true);
      dirty_dynamic_rules_.push_back(match.rule);
    }
    ARIEL_RETURN_NOT_OK(
        match.rule->Arrive(token, match.alpha_ordinal, processed));
  }
  return Status::OK();
}

void DiscriminationNetwork::OnTransitionEnd() {
  // Only rules a token actually reached this transition can hold dynamic
  // state; flushing everything would make transitions O(#rules).
  for (RuleNetwork* rule : dirty_dynamic_rules_) {
    rule->FlushDynamicMemories();
    rule->set_dirty_dynamic(false);
  }
  dirty_dynamic_rules_.clear();
}

}  // namespace ariel
