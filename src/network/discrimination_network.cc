#include "network/discrimination_network.h"

#include <algorithm>
#include <limits>

#include "util/metrics.h"

namespace ariel {

Status DiscriminationNetwork::AddRule(RuleNetwork* rule) {
  ARIEL_RETURN_NOT_OK(selection_.AddRule(rule));
  rules_.push_back(rule);
  for (size_t i = 0; i < rule->num_vars(); ++i) {
    if (rule->alpha(i)->is_virtual()) {
      ++virtual_scan_relations_[rule->alpha(i)->spec().relation->id()];
    }
  }
  return Status::OK();
}

void DiscriminationNetwork::RemoveRule(RuleNetwork* rule) {
  selection_.RemoveRule(rule);
  rules_.erase(std::remove(rules_.begin(), rules_.end(), rule), rules_.end());
  dirty_dynamic_rules_.erase(std::remove(dirty_dynamic_rules_.begin(),
                                         dirty_dynamic_rules_.end(), rule),
                             dirty_dynamic_rules_.end());
  for (size_t i = 0; i < rule->num_vars(); ++i) {
    if (rule->alpha(i)->is_virtual()) {
      auto it = virtual_scan_relations_.find(
          rule->alpha(i)->spec().relation->id());
      if (it != virtual_scan_relations_.end() && --it->second == 0) {
        virtual_scan_relations_.erase(it);
      }
    }
  }
}

void DiscriminationNetwork::NoteArrival(RuleNetwork* rule) {
  ++arrivals_;
  Metrics().alpha_arrivals.Increment();
  if (rule->has_dynamic_memories() && !rule->dirty_dynamic()) {
    rule->set_dirty_dynamic(true);
    dirty_dynamic_rules_.push_back(rule);
  }
}

Status DiscriminationNetwork::ProcessToken(const Token& token) {
  ScopedTimer timer(Metrics().token_process_ns);
  ++tokens_processed_;
  if (token_listener_) token_listener_(token);
  ARIEL_ASSIGN_OR_RETURN(std::vector<ConditionMatch> matches,
                         selection_.Match(token));
  RuleNetwork::ProcessedMemories processed;
  for (const ConditionMatch& match : matches) {
    // The memory joins the token's ProcessedMemories set at arrival, before
    // its joins run (§4.2) — this is what makes self-joins through virtual
    // α-memories produce each pairing exactly once.
    processed.insert(match.rule->alpha(match.alpha_ordinal));
    NoteArrival(match.rule);
    ARIEL_RETURN_NOT_OK(
        match.rule->Arrive(token, match.alpha_ordinal, processed));
  }
  return Status::OK();
}

Status DiscriminationNetwork::ProcessBatch(const std::vector<Token>& tokens) {
  if (tokens.empty()) return Status::OK();
  EngineMetrics& m = Metrics();
  m.batch_flushes.Increment();
  m.batch_tokens_per_flush.Observe(tokens.size());

  // Stage 1: classify the whole batch through the selection network, then
  // run the listener and arrival bookkeeping in token order — the same
  // observable order per-token propagation produces.
  std::vector<std::vector<ConditionMatch>> matches;
  {
    ScopedTimer timer(m.batch_select_ns);
    ARIEL_ASSIGN_OR_RETURN(matches, selection_.MatchBatch(tokens));
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    ++tokens_processed_;
    if (token_listener_) token_listener_(tokens[i]);
    for (const ConditionMatch& match : matches[i]) NoteArrival(match.rule);
  }

  if (pool_ == nullptr) {
    // Serial drain: exactly the per-token Arrive loop. ProcessedMemories
    // resets per token and accumulates across that token's matches.
    for (size_t i = 0; i < tokens.size(); ++i) {
      RuleNetwork::ProcessedMemories processed;
      for (const ConditionMatch& match : matches[i]) {
        processed.insert(match.rule->alpha(match.alpha_ordinal));
        ARIEL_RETURN_NOT_OK(
            match.rule->Arrive(tokens[i], match.alpha_ordinal, processed));
      }
    }
    return Status::OK();
  }

  // Stage 2: route each rule's share of the batch to one task. Rules own
  // disjoint α/β-memories and P-nodes, so tasks touch no shared mutable
  // state beyond relaxed metric counters; base relations are read-only for
  // the whole flush (the hazard flush in TransitionManager guarantees it).
  // Serial ProcessedMemories behaviour survives the split because Arrive
  // only ever tests membership of the rule's own memories.
  struct Item {
    uint32_t token_seq;
    size_t alpha_ordinal;
  };
  struct RuleWork {
    RuleNetwork* rule = nullptr;
    std::vector<Item> items;
    std::vector<RuleNetwork::StagedDelta> staged;
    Status status = Status::OK();
    uint32_t failed_token = std::numeric_limits<uint32_t>::max();
  };
  // Selection matches come out in registration-id order and a rule's
  // conditions are registered contiguously, so iterating rules_ (the same
  // registration order) later replays inter-rule order exactly.
  std::unordered_map<const RuleNetwork*, size_t> work_of;
  std::vector<RuleWork> works;
  for (size_t i = 0; i < tokens.size(); ++i) {
    for (const ConditionMatch& match : matches[i]) {
      auto [it, fresh] = work_of.try_emplace(match.rule, works.size());
      if (fresh) {
        works.emplace_back();
        works.back().rule = match.rule;
      }
      works[it->second].items.push_back(
          Item{static_cast<uint32_t>(i), match.alpha_ordinal});
    }
  }
  std::unordered_map<const RuleNetwork*, size_t> registration_index;
  registration_index.reserve(rules_.size());
  for (size_t r = 0; r < rules_.size(); ++r) registration_index[rules_[r]] = r;
  std::sort(works.begin(), works.end(),
            [&registration_index](const RuleWork& a, const RuleWork& b) {
              return registration_index.at(a.rule) <
                     registration_index.at(b.rule);
            });

  m.match_tasks.Increment(works.size());
  const uint64_t steals_before = pool_->steals();
  {
    ScopedTimer timer(m.batch_match_ns);
    std::vector<ThreadPool::Task> tasks;
    tasks.reserve(works.size());
    for (RuleWork& work : works) {
      tasks.push_back([&work, &tokens] {
        RuleNetwork* rule = work.rule;
        rule->BeginStagedDeltas(&work.staged);
        RuleNetwork::ProcessedMemories processed;
        uint32_t current = std::numeric_limits<uint32_t>::max();
        for (const Item& item : work.items) {
          if (item.token_seq != current) {
            processed.clear();
            current = item.token_seq;
          }
          rule->set_staged_token_seq(item.token_seq);
          processed.insert(rule->alpha(item.alpha_ordinal));
          Status status = rule->Arrive(tokens[item.token_seq],
                                       item.alpha_ordinal, processed);
          if (!status.ok()) {
            work.status = std::move(status);
            work.failed_token = item.token_seq;
            break;
          }
        }
        rule->EndStagedDeltas();
      });
    }
    pool_->RunAll(std::move(tasks));
  }
  m.match_steal_count.Increment(pool_->steals() - steals_before);

  // Stage 3: deterministic merge. Works are in rule-registration order and
  // each buffer is in token order, so a stable sort by token_seq recreates
  // the serial P-node mutation order (token, then rule, then within-rule
  // discovery order) exactly — including match-clock stamp assignment.
  ScopedTimer timer(m.batch_merge_ns);
  struct MergeOp {
    RuleNetwork* rule;
    const RuleNetwork::StagedDelta* delta;
  };
  std::vector<MergeOp> ops;
  for (RuleWork& work : works) {
    ops.reserve(ops.size() + work.staged.size());
    for (const RuleNetwork::StagedDelta& delta : work.staged) {
      ops.push_back(MergeOp{work.rule, &delta});
    }
  }
  std::stable_sort(ops.begin(), ops.end(),
                   [](const MergeOp& a, const MergeOp& b) {
                     return a.delta->token_seq < b.delta->token_seq;
                   });
  for (const MergeOp& op : ops) {
    ARIEL_RETURN_NOT_OK(op.rule->ApplyStagedDelta(*op.delta));
  }

  // Error precedence mirrors serial propagation: the failure triggered by
  // the earliest token (rule order breaking ties, because works are already
  // rule-ordered) is the one a per-token run would have hit first.
  const RuleWork* first_failure = nullptr;
  for (const RuleWork& work : works) {
    if (work.status.ok()) continue;
    if (first_failure == nullptr ||
        work.failed_token < first_failure->failed_token) {
      first_failure = &work;
    }
  }
  if (first_failure != nullptr) return first_failure->status;
  return Status::OK();
}

void DiscriminationNetwork::OnTransitionEnd() {
  // Only rules a token actually reached this transition can hold dynamic
  // state; flushing everything would make transitions O(#rules).
  for (RuleNetwork* rule : dirty_dynamic_rules_) {
    rule->FlushDynamicMemories();
    rule->set_dirty_dynamic(false);
  }
  dirty_dynamic_rules_.clear();
}

}  // namespace ariel
