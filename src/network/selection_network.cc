#include "network/selection_network.h"

#include <algorithm>
#include <sstream>

#include "storage/column_batch.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace ariel {

namespace {

/// MatchBatch builds a ColumnBatch over a relation's token group only when
/// the group is at least this large; below it the per-token scratch-Row
/// path wins (batch construction cost is linear in group size either way,
/// but masks amortize over candidates only once groups have some width).
constexpr size_t kColumnarClassifyMinTokens = 16;

/// Intersects `add` into `acc`.
void IntersectInterval(Interval* acc, const Interval& add) {
  if (add.lo.has_value()) {
    if (!acc->lo.has_value() || *add.lo > *acc->lo ||
        (*add.lo == *acc->lo && !add.lo_closed)) {
      acc->lo = add.lo;
      acc->lo_closed = add.lo_closed;
    }
  }
  if (add.hi.has_value()) {
    if (!acc->hi.has_value() || *add.hi < *acc->hi ||
        (*add.hi == *acc->hi && !add.hi_closed)) {
      acc->hi = add.hi;
      acc->hi_closed = add.hi_closed;
    }
  }
}

/// Ranks interval tightness for anchor choice: 3 = point, 2 = bounded,
/// 1 = half-bounded, 0 = unbounded.
int Tightness(const Interval& iv) {
  if (iv.lo.has_value() && iv.hi.has_value()) {
    return (*iv.lo == *iv.hi) ? 3 : 2;
  }
  if (iv.lo.has_value() || iv.hi.has_value()) return 1;
  return 0;
}

}  // namespace

bool ExtractAnchorInterval(const Expr& selection, const Schema& schema,
                           size_t* attr_pos, Interval* interval) {
  std::map<size_t, Interval> per_attr;
  for (const ExprPtr& conjunct : SplitConjuncts(selection)) {
    if (conjunct->kind != ExprKind::kBinary) continue;
    const auto& bin = static_cast<const BinaryExpr&>(*conjunct);
    if (!IsComparison(bin.op) || bin.op == BinaryOp::kNe) continue;
    const Expr* ref = nullptr;
    const Expr* lit = nullptr;
    BinaryOp op = bin.op;
    if (bin.lhs->kind == ExprKind::kColumnRef &&
        bin.rhs->kind == ExprKind::kLiteral) {
      ref = bin.lhs.get();
      lit = bin.rhs.get();
    } else if (bin.rhs->kind == ExprKind::kColumnRef &&
               bin.lhs->kind == ExprKind::kLiteral) {
      ref = bin.rhs.get();
      lit = bin.lhs.get();
      op = MirrorComparison(bin.op);
    } else {
      continue;
    }
    const auto& col = static_cast<const ColumnRefExpr&>(*ref);
    if (col.previous || col.is_all()) continue;
    int pos = schema.IndexOf(col.attribute);
    if (pos < 0) continue;
    const Value& v = static_cast<const LiteralExpr&>(*lit).value;

    Interval conjunct_iv;
    switch (op) {
      case BinaryOp::kEq: conjunct_iv = Interval::Point(v); break;
      case BinaryOp::kLt: conjunct_iv = Interval::AtMost(v, false); break;
      case BinaryOp::kLe: conjunct_iv = Interval::AtMost(v, true); break;
      case BinaryOp::kGt: conjunct_iv = Interval::AtLeast(v, false); break;
      case BinaryOp::kGe: conjunct_iv = Interval::AtLeast(v, true); break;
      default: continue;
    }
    auto [it, inserted] =
        per_attr.emplace(static_cast<size_t>(pos), conjunct_iv);
    if (!inserted) IntersectInterval(&it->second, conjunct_iv);
  }

  int best_rank = -1;
  for (const auto& [pos, iv] : per_attr) {
    int rank = Tightness(iv);
    if (rank > best_rank) {
      best_rank = rank;
      *attr_pos = pos;
      *interval = iv;
    }
  }
  return best_rank >= 1;  // an unbounded anchor indexes nothing useful
}

Status SelectionNetwork::AddRule(RuleNetwork* rule) {
  for (size_t i = 0; i < rule->num_vars(); ++i) {
    const AlphaMemory* alpha = rule->alpha(i);
    const AlphaSpec& spec = alpha->spec();
    PerRelation& per_rel = relations_[spec.relation->id()];

    NodeInfo node;
    node.id = next_node_id_++;
    node.rule = rule;
    node.alpha_ordinal = i;
    node.indexed = false;

    size_t attr_pos = 0;
    Interval interval;
    if (spec.selection != nullptr &&
        ExtractAnchorInterval(*spec.selection, spec.relation->schema(),
                              &attr_pos, &interval)) {
      node.indexed = true;
      node.anchor_attr = attr_pos;
      node.interval = interval;
      auto& index = per_rel.attr_indexes[attr_pos];
      if (index == nullptr) index = std::make_unique<IntervalSkipList>();
      // An interval-skip-list stab index, not a relation.
      index->Insert(node.id, interval);  // ariel-lint: allow(gateway-mutation)
      ++num_indexed_;
    } else {
      per_rel.residual.push_back(node.id);
      ++num_residual_;
    }
    if (columnar_exec_ && spec.selection != nullptr) {
      // Null when the selection is outside the vectorizable grammar
      // (previous refs, arithmetic, ...) — those verify per token.
      node.vector_selection = VectorPredicate::Compile(
          *spec.selection, spec.var_name, spec.relation->schema());
    }
    int64_t id = node.id;
    per_rel.nodes.emplace(id, std::move(node));
  }
  return Status::OK();
}

void SelectionNetwork::RemoveRule(RuleNetwork* rule) {
  for (auto& [relation_id, per_rel] : relations_) {
    std::vector<int64_t> victims;
    for (const auto& [id, node] : per_rel.nodes) {
      if (node.rule == rule) victims.push_back(id);
    }
    for (int64_t id : victims) {
      const NodeInfo& node = per_rel.nodes.at(id);
      if (node.indexed) {
        per_rel.attr_indexes.at(node.anchor_attr)->Remove(id);
        --num_indexed_;
      } else {
        per_rel.residual.erase(std::find(per_rel.residual.begin(),
                                         per_rel.residual.end(), id));
        --num_residual_;
      }
      per_rel.nodes.erase(id);
    }
  }
}

Status SelectionNetwork::VerifyAndCollect(
    const Token& token, const NodeInfo& node,
    const std::vector<uint8_t>* mask, size_t mask_pos,
    std::vector<ConditionMatch>* out) const {
  ++node.tested;
  const AlphaMemory* alpha = node.rule->alpha(node.alpha_ordinal);
  if (!alpha->AcceptsToken(token)) return Status::OK();
  const CompiledExpr* selection = alpha->compiled_selection();
  if (selection != nullptr) {
    Metrics().selection_predicate_evals.Increment();
    if (mask != nullptr) {
      // Column-kernel verdict for this token's batch position; the grammar
      // guarantees it agrees with EvalPredicate on every row.
      if ((*mask)[mask_pos] == 0) return Status::OK();
    } else {
      Row scratch(node.rule->num_vars());
      scratch.Set(node.alpha_ordinal, token.value, token.tid);
      if (alpha->is_transition()) {
        scratch.SetPrevious(node.alpha_ordinal, token.previous);
      }
      ARIEL_ASSIGN_OR_RETURN(bool ok, selection->EvalPredicate(scratch));
      if (!ok) return Status::OK();
    }
  }
  ++node.matched;
  Metrics().selection_matches.Increment();
  out->push_back(ConditionMatch{node.rule, node.alpha_ordinal});
  return Status::OK();
}

Result<std::vector<ConditionMatch>> SelectionNetwork::Match(
    const Token& token) const {
  std::vector<ConditionMatch> out;
  auto rel_it = relations_.find(token.relation_id);
  if (rel_it == relations_.end()) return out;
  const PerRelation& per_rel = rel_it->second;
  EngineMetrics& m = Metrics();
  m.selection_tokens.Increment();
  m.selection_residual_checks.Increment(per_rel.residual.size());

  // Candidate ids from the attribute interval indexes plus the residuals;
  // verified in registration-id order for deterministic arrival order.
  std::vector<int64_t> candidates = per_rel.residual;
  for (const auto& [attr_pos, index] : per_rel.attr_indexes) {
    if (attr_pos < token.value.size()) {
      m.selection_stabs.Increment();
      index->Stab(token.value.at(attr_pos), &candidates);
    }
  }
  std::sort(candidates.begin(), candidates.end());

  for (int64_t id : candidates) {
    ARIEL_RETURN_NOT_OK(VerifyAndCollect(token, per_rel.nodes.at(id),
                                         /*mask=*/nullptr, 0, &out));
  }
  return out;
}

Result<std::vector<std::vector<ConditionMatch>>> SelectionNetwork::MatchBatch(
    const std::vector<Token>& tokens) const {
  std::vector<std::vector<ConditionMatch>> out(tokens.size());
  EngineMetrics& m = Metrics();

  // Stab cache per interval index: tokens sharing an attribute value form a
  // constant-partition and descend the skip list once. The indexes cannot
  // change mid-batch (rule DDL never runs inside a transition), so cached id
  // sets stay valid for the whole batch.
  std::unordered_map<const IntervalSkipList*,
                     std::unordered_map<Value, std::vector<int64_t>, ValueHash>>
      stab_cache;

  // Columnar verification: tokens of the same relation form a group; each
  // group lazily materializes one ColumnBatch over its token values, and
  // each vector-compiled condition that comes up as a candidate evaluates
  // once per group (a mask consulted by batch position) instead of once per
  // token on a scratch row. Duplicate tids in a batch are fine — masks are
  // positional, not keyed by tid.
  struct RelGroup {
    std::vector<size_t> token_idx;  // positions into `tokens`
    std::shared_ptr<const ColumnBatch> batch;
    std::unordered_map<const NodeInfo*, std::vector<uint8_t>> masks;
  };
  std::unordered_map<uint32_t, RelGroup> groups;
  std::vector<size_t> group_pos(columnar_exec_ ? tokens.size() : 0, 0);
  if (columnar_exec_) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      RelGroup& group = groups[tokens[i].relation_id];
      group_pos[i] = group.token_idx.size();
      group.token_idx.push_back(i);
    }
  }
  auto mask_for = [&](const Token& token,
                      const NodeInfo& node) -> const std::vector<uint8_t>* {
    if (!columnar_exec_ || node.vector_selection == nullptr) return nullptr;
    RelGroup& group = groups.at(token.relation_id);
    if (group.token_idx.size() < kColumnarClassifyMinTokens) return nullptr;
    auto mask_it = group.masks.find(&node);
    if (mask_it == group.masks.end()) {
      if (group.batch == nullptr) {
        const Schema& schema =
            node.rule->alpha(node.alpha_ordinal)->spec().relation->schema();
        ColumnBatchBuilder builder(schema, group.token_idx.size());
        for (size_t ti : group.token_idx) {
          builder.Append(tokens[ti].tid, tokens[ti].value);
        }
        group.batch = builder.Build(/*source_version=*/0);
        Metrics().columnar_classified_tokens.Increment(group.token_idx.size());
      }
      std::vector<uint8_t> mask;
      node.vector_selection->EvalMask(*group.batch, &mask);
      mask_it = group.masks.emplace(&node, std::move(mask)).first;
    }
    return &mask_it->second;
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    auto rel_it = relations_.find(token.relation_id);
    if (rel_it == relations_.end()) continue;
    const PerRelation& per_rel = rel_it->second;
    m.selection_tokens.Increment();
    m.selection_residual_checks.Increment(per_rel.residual.size());

    std::vector<int64_t> candidates = per_rel.residual;
    for (const auto& [attr_pos, index] : per_rel.attr_indexes) {
      if (attr_pos >= token.value.size()) continue;
      const Value& v = token.value.at(attr_pos);
      auto& per_index = stab_cache[index.get()];
      auto hit = per_index.find(v);
      if (hit == per_index.end()) {
        m.selection_stabs.Increment();
        std::vector<int64_t> ids;
        index->Stab(v, &ids);
        hit = per_index.emplace(v, std::move(ids)).first;
      }
      candidates.insert(candidates.end(), hit->second.begin(),
                        hit->second.end());
    }
    std::sort(candidates.begin(), candidates.end());

    for (int64_t id : candidates) {
      const NodeInfo& node = per_rel.nodes.at(id);
      ARIEL_RETURN_NOT_OK(VerifyAndCollect(
          token, node, mask_for(token, node),
          columnar_exec_ ? group_pos[i] : 0, &out[i]));
    }
  }
  return out;
}

std::string SelectionNetwork::DescribeRule(const RuleNetwork* rule) const {
  // Collect this rule's nodes across all relations, in condition order.
  std::vector<const NodeInfo*> nodes;
  for (const auto& [relation_id, per_rel] : relations_) {
    for (const auto& [id, node] : per_rel.nodes) {
      if (node.rule == rule) nodes.push_back(&node);
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeInfo* a, const NodeInfo* b) {
              return a->alpha_ordinal < b->alpha_ordinal;
            });

  std::ostringstream os;
  for (const NodeInfo* node : nodes) {
    const AlphaSpec& spec = node->rule->alpha(node->alpha_ordinal)->spec();
    os << "  condition " << node->alpha_ordinal << " (" << spec.var_name
       << " in " << spec.relation->name() << "): ";
    if (node->indexed) {
      const Schema& schema = spec.relation->schema();
      os << "indexed on " << schema.attribute(node->anchor_attr).name << " "
         << node->interval.ToString();
    } else {
      os << "residual (verified on every " << spec.relation->name()
         << " token)";
    }
    os << ", tested " << node->tested << ", matched " << node->matched
       << "\n";
  }
  return os.str();
}

double SelectionNetwork::ObservedSelectivity(const RuleNetwork* rule,
                                             size_t alpha_ordinal) const {
  for (const auto& [relation_id, per_rel] : relations_) {
    for (const auto& [id, node] : per_rel.nodes) {
      if (node.rule != rule || node.alpha_ordinal != alpha_ordinal) continue;
      if (node.tested == 0) return -1.0;
      return static_cast<double>(node.matched) /
             static_cast<double>(node.tested);
    }
  }
  return -1.0;
}

std::vector<std::string> SelectionNetwork::AuditIndexes() const {
  std::vector<std::string> problems;
  for (const auto& [rel_id, per] : relations_) {
    const std::string where = "relation " + std::to_string(rel_id);
    size_t indexed = 0;
    for (const auto& [attr, isl] : per.attr_indexes) {
      std::string problem = isl->AuditStabConsistency();
      if (!problem.empty()) {
        problems.push_back(where + " attr " + std::to_string(attr) + ": " +
                           problem);
      }
      indexed += isl->size();
    }
    if (indexed + per.residual.size() != per.nodes.size()) {
      problems.push_back(where + ": " + std::to_string(per.nodes.size()) +
                         " conditions registered but " +
                         std::to_string(indexed) + " indexed + " +
                         std::to_string(per.residual.size()) + " residual");
    }
    for (int64_t id : per.residual) {
      if (per.nodes.find(id) == per.nodes.end()) {
        problems.push_back(where + ": residual id " + std::to_string(id) +
                           " has no registered condition");
      }
    }
  }
  return problems;
}

}  // namespace ariel
