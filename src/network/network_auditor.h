#ifndef ARIEL_NETWORK_NETWORK_AUDITOR_H_
#define ARIEL_NETWORK_NETWORK_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "network/rule_network.h"
#include "network/selection_network.h"
#include "util/status.h"

namespace ariel {

/// What the auditor can find wrong with the discrimination network.
enum class AuditViolationKind : uint8_t {
  kAlphaMissing,      // base tuple satisfies the selection but is not stored
  kAlphaExtra,        // stored entry is dead or fails the selection predicate
  kAlphaStale,        // stored entry's value disagrees with the base tuple
  kAlphaDuplicate,    // same tid stored twice in one α-memory
  kDynamicNotFlushed, // dynamic memory non-empty at quiescence (§4.3.2)
  kPnodeDangling,     // P-node instantiation binds a tid no longer live
  kPnodeStale,        // P-node instantiation's values disagree with the base
  kIslInconsistent,   // interval index disagrees with a brute-force stab
  kJoinIndexInconsistent,  // hash join index / retraction map ⇎ entry vector
  kStagedDeltasPending,    // batch pipeline left staged/deferred work behind
  kUndoResidue,            // undo log non-empty / savepoints open at quiescence
  kColumnCacheIncoherent,  // cached column batch disagrees with its source rows
};

const char* AuditViolationKindToString(AuditViolationKind kind);

/// One invariant violation: which rule (or the selection network), what kind,
/// and a human-readable description precise enough to debug from.
struct AuditViolation {
  AuditViolationKind kind;
  std::string rule;  // rule name; "selection-network" for ISL findings
  std::string detail;

  std::string ToString() const;
};

/// Cross-checks the A-TREAT network's incremental state against ground truth
/// recomputed from the base relations — the debug-build counterpart of the
/// equivalence tests, cheap enough to run at every quiescence point under
/// ARIEL_AUDIT.
///
/// Invariants checked (all are consequences of §4's maintenance algorithm at
/// quiescence):
///   - every stored (non-dynamic) α-memory holds exactly the base tuples
///     satisfying its selection predicate, with current values and no
///     duplicate tids;
///   - dynamic (event / transition) memories are empty — end-of-transition
///     flushing ran;
///   - every P-node instantiation's pattern bindings reference live base
///     tuples with matching values;
///   - the selection network's interval skip lists answer stabbing queries
///     identically to a brute-force scan of the registered conditions;
///   - any materialized α-memory column cache mirrors its entry vector
///     cell-for-cell (Database::AuditNetwork adds the same check for heap
///     relation column caches).
///
/// The checks run in any build; ARIEL_AUDIT only controls whether Database
/// invokes them automatically after each recognize-act cycle.
class NetworkAuditor {
 public:
  /// Audits one rule's α-memories and P-node. Appends violations to `out`.
  /// The returned Status reports evaluation failures (a selection predicate
  /// that cannot be evaluated), not violations.
  [[nodiscard]] static Status AuditRule(const RuleNetwork& rule,
                                        std::vector<AuditViolation>* out);

  /// Audits the selection network's interval indexes. Appends to `out`.
  static void AuditSelection(const SelectionNetwork& selection,
                             std::vector<AuditViolation>* out);

  /// Full audit at a quiescence point: every given rule plus the selection
  /// network. Returns the violations found (empty = network consistent).
  [[nodiscard]] static Result<std::vector<AuditViolation>> AuditAtQuiescence(
      const std::vector<const RuleNetwork*>& rules,
      const SelectionNetwork& selection);
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_NETWORK_AUDITOR_H_
