#include "network/adaptive_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "network/selection_network.h"

namespace ariel {

namespace {

// Unit costs (arbitrary units; only ratios matter). Probe costs price
// enumerating candidates for one join step, upkeep costs price maintaining
// a memory for one arriving token, and the rent term amortizes the storage
// a materialized memory holds (§4.2's motivation for virtual memories) into
// the same per-token currency so shapes with different footprints compare.
constexpr double kHashProbeCost = 2.0;
constexpr double kBtreeStepCost = 1.5;
constexpr double kEntryTestCost = 1.0;
constexpr double kColumnarRowCost = 0.25;
constexpr double kColumnarSetupCost = 8.0;
constexpr double kVirtualScanSetup = 4.0;
constexpr double kStoredUpkeepCost = 2.0;
constexpr double kHashUpkeepCost = 1.0;
constexpr double kBetaUpkeepCost = 2.0;
constexpr double kBetaProbeCost = 1.5;
constexpr double kPnodeRetractCost = 1.0;
constexpr double kEntryRent = 1.0 / 8192.0;

/// Does variable `v` (α ordinal `i`) materialize entries under shape `s`?
bool StoredUnder(const NetworkStrategy& s, const VarObservation& v,
                 size_t i) {
  if (!v.replannable) {
    // Dynamic/simple memories keep their compiler-assigned kind.
    return v.kind != AlphaKind::kVirtual;
  }
  if (i < s.alpha_stored.size()) return s.alpha_stored[i] != 0;
  switch (s.alpha) {
    case NetworkStrategy::AlphaChoice::kAllStored:
      return true;
    case NetworkStrategy::AlphaChoice::kAllVirtual:
      return false;
    case NetworkStrategy::AlphaChoice::kThreshold:
      return static_cast<double>(v.relation_size) * v.selectivity <
             s.virtual_threshold;
  }
  return true;
}

/// Expected materialized cardinality of `v` under shape `s`. Uses the
/// observed entry count when the memory is stored today, otherwise the
/// relation size scaled by the observed selection selectivity.
double EstimatedEntries(const NetworkStrategy& s, const VarObservation& v,
                       size_t i) {
  if (!StoredUnder(s, v, i)) return 0;
  const bool stored_now =
      v.kind == AlphaKind::kStored || v.kind == AlphaKind::kDynamicOn ||
      v.kind == AlphaKind::kDynamicTrans;
  if (stored_now) return static_cast<double>(v.stored_entries);
  return static_cast<double>(v.relation_size) * v.selectivity;
}

/// Cost of enumerating join candidates out of variable `v` for one probe.
double AccessCost(const NetworkStrategy& s, const VarObservation& v, size_t i,
                  const AdaptiveConfig& config) {
  if (StoredUnder(s, v, i)) {
    const double entries = EstimatedEntries(s, v, i);
    if (s.join_hash_indexes && v.has_equijoin) return kHashProbeCost;
    if (s.columnar_exec &&
        entries >= static_cast<double>(config.columnar_min_rows)) {
      return kColumnarSetupCost + entries * kColumnarRowCost;
    }
    return entries * kEntryTestCost;
  }
  // Virtual: B+tree probe when an equijoin path meets a base index, else a
  // base-relation scan through the selection predicate.
  const double rel = static_cast<double>(v.relation_size);
  if (v.has_btree_path) return std::log2(rel + 2.0) * kBtreeStepCost;
  return kVirtualScanSetup + rel * kEntryTestCost;
}

/// Expected result fan-out of binding `v` during a join walk: equijoins are
/// treated as key joins (one partner); anything else multiplies the carry.
double Fanout(const NetworkStrategy& s, const VarObservation& v, size_t i) {
  if (v.has_equijoin) return 1.0;
  const double est = StoredUnder(s, v, i)
                         ? EstimatedEntries(s, v, i)
                         : static_cast<double>(v.relation_size) * v.selectivity;
  return std::max(1.0, 0.1 * est);
}

/// Probe order for a TREAT join walk under `s`: the explicit plan when one
/// is set, else ascending estimated cardinality (the built-in heuristic's
/// static shadow).
std::vector<size_t> WalkOrder(const RuleObservation& obs,
                              const NetworkStrategy& s) {
  const size_t n = obs.vars.size();
  if (s.join_order.size() == n) return s.join_order;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ea = StoredUnder(s, obs.vars[a], a)
                          ? EstimatedEntries(s, obs.vars[a], a)
                          : static_cast<double>(obs.vars[a].relation_size);
    const double eb = StoredUnder(s, obs.vars[b], b)
                          ? EstimatedEntries(s, obs.vars[b], b)
                          : static_cast<double>(obs.vars[b].relation_size);
    return ea < eb;
  });
  return order;
}

/// Join cost for one token arriving at `trigger` under TREAT: walk the
/// remaining variables in order, discounting/amplifying later probes by the
/// accumulated fan-out.
double TreatJoinCost(const RuleObservation& obs, const NetworkStrategy& s,
                     size_t trigger, const AdaptiveConfig& config) {
  double cost = 0;
  double carry = 1.0;
  for (size_t v : WalkOrder(obs, s)) {
    if (v == trigger) continue;
    cost += carry * AccessCost(s, obs.vars[v], v, config);
    carry *= Fanout(s, obs.vars[v], v);
  }
  return cost;
}

/// Approximate partial count of β_level (partials over variables
/// [0, level]) — the first memory's cardinality times the fan-out of the
/// joins that extended it.
double BetaSize(const RuleObservation& obs, const NetworkStrategy& s) {
  const VarObservation& first = obs.vars[0];
  double size = StoredUnder(s, first, 0)
                    ? EstimatedEntries(s, first, 0)
                    : static_cast<double>(first.relation_size) *
                          first.selectivity;
  return size;
}

/// Join + maintenance cost for one asserting token arriving at ordinal
/// `idx` under Rete: probe the β level to its left, extend rightward, and
/// pay β upkeep for every level the new partials land in.
double ReteJoinCost(const RuleObservation& obs, const NetworkStrategy& s,
                    size_t idx, const AdaptiveConfig& config) {
  const size_t n = obs.vars.size();
  double cost = 0;
  if (idx == 1) {
    // The left neighbor of ordinal 1 is α₀ itself, not a β memory — it may
    // be virtual, in which case the probe pays the base-relation path.
    cost += AccessCost(s, obs.vars[0], 0, config);
  } else if (idx > 1) {
    cost += s.join_hash_indexes ? kHashProbeCost
                                : std::max(kBetaProbeCost, BetaSize(obs, s));
  }
  double carry = 1.0;
  for (size_t v = idx + 1; v < n; ++v) {
    cost += carry * AccessCost(s, obs.vars[v], v, config);
    carry *= Fanout(s, obs.vars[v], v);
  }
  // β levels exist for ordinals [1, n-2]; a partial is stored at every
  // level from max(idx, 1) through n-2.
  if (n >= 3) {
    const size_t first_level = std::max<size_t>(idx, 1);
    if (first_level + 1 < n) {
      cost += kBetaUpkeepCost * static_cast<double>(n - 1 - first_level);
    }
  }
  return cost;
}

}  // namespace

std::string NetworkStrategy::ToString() const {
  std::ostringstream os;
  os << JoinBackendToString(backend) << " alpha=";
  switch (alpha) {
    case AlphaChoice::kAllStored:
      os << "stored";
      break;
    case AlphaChoice::kAllVirtual:
      os << "virtual";
      break;
    case AlphaChoice::kThreshold:
      os << "mixed(";
      for (uint8_t stored : alpha_stored) os << (stored ? 's' : 'v');
      os << ")";
      break;
  }
  os << " hash=" << (join_hash_indexes ? "on" : "off")
     << " columnar=" << (columnar_exec ? "on" : "off");
  if (!join_order.empty()) {
    os << " order=[";
    for (size_t i = 0; i < join_order.size(); ++i) {
      os << (i > 0 ? "," : "") << join_order[i];
    }
    os << "]";
  } else {
    os << " order=heuristic";
  }
  return os.str();
}

bool operator==(const NetworkStrategy& a, const NetworkStrategy& b) {
  // The resolved per-variable split is the real α shape; the enum +
  // threshold are its derivation and excluded (two thresholds that resolve
  // to the same split describe the same network).
  return a.backend == b.backend && a.alpha_stored == b.alpha_stored &&
         a.join_hash_indexes == b.join_hash_indexes &&
         a.columnar_exec == b.columnar_exec && a.join_order == b.join_order;
}

RuleObservation CollectObservation(const RuleNetwork& network,
                                   const SelectionNetwork* selection) {
  RuleObservation obs;
  obs.rule = network.rule_name();
  obs.backend = network.backend();
  obs.join_hash_indexes = network.join_hash_indexes();
  obs.columnar_exec = network.columnar_exec();
  const RuleNetwork::MatchStats& stats = network.match_stats();
  obs.arrivals = stats.arrivals;
  obs.plus_tokens = stats.plus_tokens;
  obs.minus_tokens = stats.minus_tokens;
  obs.planned_join_order = network.planned_join_order();
  for (size_t i = 0; i < network.num_vars(); ++i) {
    const AlphaMemory* alpha = network.alpha(i);
    const AlphaSpec& spec = alpha->spec();
    VarObservation var;
    var.name = spec.var_name;
    var.kind = alpha->kind();
    var.relation_id = spec.relation->id();
    var.relation_size = spec.relation->size();
    var.stored_entries = alpha->stores_tuples() ? alpha->entries().size() : 0;
    var.has_equijoin = !spec.equijoin_attrs.empty();
    for (const std::string& attr : spec.equijoin_attrs) {
      if (spec.relation->GetIndex(attr) != nullptr) {
        var.has_btree_path = true;
        break;
      }
    }
    var.replannable =
        var.kind == AlphaKind::kStored || var.kind == AlphaKind::kVirtual;
    if (alpha->is_dynamic() || alpha->is_transition() ||
        spec.on_event.has_value()) {
      obs.pure_pattern = false;
    }
    double sel = -1.0;
    if (selection != nullptr) {
      sel = selection->ObservedSelectivity(&network, i);
    }
    if (sel < 0 && alpha->stores_tuples() && var.relation_size > 0) {
      sel = static_cast<double>(var.stored_entries) /
            static_cast<double>(var.relation_size);
    }
    var.selectivity = sel < 0 ? 1.0 : std::min(sel, 1.0);
    if (i < stats.var_arrivals.size()) {
      var.arrivals = stats.var_arrivals[i];
    }
    obs.vars.push_back(std::move(var));
  }
  return obs;
}

double AdaptiveOptimizer::ModelCost(const RuleObservation& obs,
                                    const NetworkStrategy& s,
                                    const AdaptiveConfig& config) {
  const size_t n = obs.vars.size();
  if (n == 0 || obs.arrivals == 0) return 0;
  const double total = static_cast<double>(obs.arrivals);
  const double minus_frac =
      obs.plus_tokens + obs.minus_tokens == 0
          ? 0.0
          : static_cast<double>(obs.minus_tokens) /
                static_cast<double>(obs.plus_tokens + obs.minus_tokens);
  const double plus_frac = 1.0 - minus_frac;

  // Per-token storage rent over everything this shape materializes.
  double rent = 0;
  for (size_t i = 0; i < n; ++i) {
    rent += EstimatedEntries(s, obs.vars[i], i) * kEntryRent;
  }
  if (s.backend == JoinBackend::kRete && n >= 3) {
    rent += BetaSize(obs, s) * static_cast<double>(n - 2) * kEntryRent;
  }

  double cost = total * rent;
  for (size_t i = 0; i < n; ++i) {
    const VarObservation& v = obs.vars[i];
    const double arrivals = static_cast<double>(v.arrivals);
    if (arrivals == 0) continue;

    double upkeep = 0;
    if (StoredUnder(s, v, i)) {
      upkeep = kStoredUpkeepCost +
               (s.join_hash_indexes && v.has_equijoin ? kHashUpkeepCost : 0);
    }

    double plus_join = 0;
    double minus_extra = kPnodeRetractCost;
    if (n > 1) {
      if (s.backend == JoinBackend::kRete) {
        plus_join = ReteJoinCost(obs, s, i, config);
        // Retraction walks every β level at or right of the variable.
        if (n >= 3) {
          const size_t first_level = std::max<size_t>(i, 1);
          if (first_level + 1 < n) {
            minus_extra +=
                kBetaUpkeepCost * static_cast<double>(n - 1 - first_level);
          }
        }
      } else {
        plus_join = TreatJoinCost(obs, s, i, config);
      }
    }
    cost += arrivals * (upkeep + plus_frac * plus_join +
                        minus_frac * minus_extra);
  }
  return cost;
}

NetworkStrategy AdaptiveOptimizer::CurrentStrategy(
    const RuleObservation& obs) {
  NetworkStrategy s;
  s.backend = obs.backend;
  s.join_hash_indexes = obs.join_hash_indexes;
  s.columnar_exec = obs.columnar_exec;
  s.join_order = obs.planned_join_order;
  size_t stored = 0;
  size_t replannable = 0;
  for (const VarObservation& v : obs.vars) {
    s.alpha_stored.push_back(v.kind != AlphaKind::kVirtual ? 1 : 0);
    if (!v.replannable) continue;
    ++replannable;
    if (v.kind == AlphaKind::kStored) ++stored;
  }
  if (replannable == 0 || stored == replannable) {
    s.alpha = NetworkStrategy::AlphaChoice::kAllStored;
  } else if (stored == 0) {
    s.alpha = NetworkStrategy::AlphaChoice::kAllVirtual;
  } else {
    s.alpha = NetworkStrategy::AlphaChoice::kThreshold;
  }
  return s;
}

NetworkStrategy AdaptiveOptimizer::BestStrategy(const RuleObservation& obs,
                                                double* best_cost) const {
  const size_t n = obs.vars.size();
  const NetworkStrategy current = CurrentStrategy(obs);
  NetworkStrategy best = current;
  double best_c = ModelCost(obs, current, config_);

  // α-choice candidates: every split point of the estimated-cardinality
  // ladder (so individual memories can be promoted or demoted), expressed
  // canonically as kAllStored / kAllVirtual when uniform.
  std::vector<double> cuts;
  cuts.push_back(0);  // all replannable memories virtual
  for (const VarObservation& v : obs.vars) {
    if (!v.replannable) continue;
    cuts.push_back(static_cast<double>(v.relation_size) * v.selectivity +
                   1.0);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<JoinBackend> backends{JoinBackend::kTreat};
  if (obs.pure_pattern && n >= 2) backends.push_back(JoinBackend::kRete);

  for (JoinBackend backend : backends) {
    for (double cut : cuts) {
      for (bool hash : {true, false}) {
        for (bool columnar : {true, false}) {
          NetworkStrategy cand;
          cand.backend = backend;
          cand.join_hash_indexes = hash;
          cand.columnar_exec = columnar;
          cand.alpha = NetworkStrategy::AlphaChoice::kThreshold;
          cand.virtual_threshold = cut;
          // Resolve the split into the explicit per-variable decision the
          // rule manager applies, canonicalizing uniform splits.
          size_t stored = 0;
          size_t replannable = 0;
          for (size_t i = 0; i < n; ++i) {
            const VarObservation& v = obs.vars[i];
            cand.alpha_stored.push_back(StoredUnder(cand, v, i) ? 1 : 0);
            if (!v.replannable) continue;
            ++replannable;
            if (cand.alpha_stored.back() != 0) ++stored;
          }
          if (replannable == 0 || stored == replannable) {
            cand.alpha = NetworkStrategy::AlphaChoice::kAllStored;
            cand.virtual_threshold = 0;
          } else if (stored == 0) {
            cand.alpha = NetworkStrategy::AlphaChoice::kAllVirtual;
            cand.virtual_threshold = 0;
          }
          // Explicit probe order for 3+-variable TREAT walks: ascending
          // access cost, so cheap keyed memories are bound before
          // expensive scans.
          if (backend == JoinBackend::kTreat && n >= 3) {
            std::vector<size_t> order(n);
            for (size_t i = 0; i < n; ++i) order[i] = i;
            std::stable_sort(
                order.begin(), order.end(), [&](size_t a, size_t b) {
                  return AccessCost(cand, obs.vars[a], a, config_) <
                         AccessCost(cand, obs.vars[b], b, config_);
                });
            cand.join_order = std::move(order);
          }
          const double c = ModelCost(obs, cand, config_);
          if (c < best_c) {
            best_c = c;
            best = cand;
          }
        }
      }
    }
  }
  if (best_cost != nullptr) *best_cost = best_c;
  return best;
}

RuleObservation AdaptiveOptimizer::Windowed(const RuleObservation& obs,
                                            const RuleState& state) const {
  RuleObservation w = obs;
  if (!state.has_baseline) return w;
  auto rebase = [](uint64_t value, uint64_t base) {
    return value >= base ? value - base : value;
  };
  w.arrivals = rebase(w.arrivals, state.base_arrivals);
  w.plus_tokens = rebase(w.plus_tokens, state.base_plus);
  w.minus_tokens = rebase(w.minus_tokens, state.base_minus);
  for (size_t i = 0; i < w.vars.size(); ++i) {
    if (i < state.base_var_arrivals.size()) {
      w.vars[i].arrivals =
          rebase(w.vars[i].arrivals, state.base_var_arrivals[i]);
    }
  }
  return w;
}

bool AdaptiveOptimizer::ShouldEvaluate(const std::string& rule,
                                       uint64_t arrivals) {
  const uint64_t stride = std::max<uint64_t>(1, config_.min_tokens / 4);
  RuleState& state = rules_[rule];
  if (arrivals < state.last_evaluated_arrivals + stride) return false;
  state.last_evaluated_arrivals = arrivals;
  return true;
}

AdaptiveOptimizer::Decision AdaptiveOptimizer::Evaluate(
    const RuleObservation& raw) {
  RuleState& state = rules_[raw.rule];
  // Price the traffic since the last re-plan, not lifetime totals: after a
  // workload shift the stale history would otherwise keep outvoting the
  // current behaviour (a probe-heavy past making a now-churn-only memory
  // look worth storing, and vice versa).
  const RuleObservation obs = Windowed(raw, state);
  Decision decision;
  decision.current = CurrentStrategy(obs);
  decision.current_cost = ModelCost(obs, decision.current, config_);
  decision.strategy = BestStrategy(obs, &decision.best_cost);

  if (state.replans > 0 && obs.arrivals < config_.min_tokens) {
    decision.reason = "cooldown";
    return decision;
  }
  // Hysteresis: only shapes that undercut the current cost by the margin
  // trigger a re-plan; a negative margin (test/bench mode) forces one
  // whenever the rule has any modeled traffic at all.
  if (decision.best_cost < decision.current_cost * (1.0 - config_.min_gain) &&
      decision.current_cost > 0) {
    decision.replan = true;
    decision.reason = "modeled cost " + std::to_string(decision.best_cost) +
                      " vs " + std::to_string(decision.current_cost);
  } else {
    decision.reason = "within hysteresis margin";
    // Slide the window forward once it holds 8 cooldowns of tokens: a
    // stable verdict on that much traffic is settled, and keeping the
    // history around would only slow recognition of the next shift.
    const uint64_t cap = std::max<uint64_t>(config_.min_tokens, 64) * 8;
    if (obs.arrivals >= cap) Rebase(&state, raw);
  }
  return decision;
}

void AdaptiveOptimizer::Rebase(RuleState* state, const RuleObservation& obs) {
  state->has_baseline = true;
  state->base_arrivals = obs.arrivals;
  state->base_plus = obs.plus_tokens;
  state->base_minus = obs.minus_tokens;
  state->base_var_arrivals.clear();
  state->base_var_arrivals.reserve(obs.vars.size());
  for (const VarObservation& var : obs.vars) {
    state->base_var_arrivals.push_back(var.arrivals);
  }
}

void AdaptiveOptimizer::NoteReplanned(const RuleObservation& obs) {
  RuleState& state = rules_[obs.rule];
  Rebase(&state, obs);
  ++state.replans;
}

uint64_t AdaptiveOptimizer::replans(const std::string& rule) const {
  auto it = rules_.find(rule);
  return it == rules_.end() ? 0 : it->second.replans;
}

}  // namespace ariel
