#include "network/rule_network.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace ariel {

namespace {

/// Minimum stored-α entry count before the scan fallback bothers building
/// a mask; below this the per-scan kernel setup costs more than it saves.
constexpr size_t kColumnarPrefilterMinEntries = 16;

}  // namespace

const char* AlphaKindToString(AlphaKind kind) {
  switch (kind) {
    case AlphaKind::kStored: return "stored";
    case AlphaKind::kVirtual: return "virtual";
    case AlphaKind::kDynamicOn: return "dynamic-on";
    case AlphaKind::kDynamicTrans: return "dynamic-trans";
    case AlphaKind::kSimple: return "simple";
    case AlphaKind::kSimpleOn: return "simple-on";
    case AlphaKind::kSimpleTrans: return "simple-trans";
  }
  return "?";
}

bool AlphaMemory::AcceptsToken(const Token& token) const {
  // On-conditions examine the event specifier (§4.3.1); a token with no
  // specifier (the paper's simple − token) never matches an on-condition.
  if (spec_.on_event.has_value()) {
    if (!token.event.has_value()) return false;
    if (token.event->kind != spec_.on_event->kind) return false;
    if (spec_.on_event->kind == EventKind::kReplace &&
        !spec_.on_event->attributes.empty()) {
      bool touched = false;
      for (const std::string& want : spec_.on_event->attributes) {
        for (const std::string& got : token.event->updated_attrs()) {
          if (EqualsIgnoreCase(want, got)) {
            touched = true;
            break;
          }
        }
      }
      if (!touched) return false;
    }
  }
  // Transition memories consume only Δ tokens (Figure 5: +/− entries for
  // the trans rows are "don't care" — they can never occur).
  if (is_transition() && !token.is_delta()) return false;
  return true;
}

void AlphaMemory::ConfigureJoinIndex(size_t num_vars,
                                     std::vector<JoinKeySpec> specs) {
  num_vars_ = num_vars;
  scratch_row_ = Row(num_vars);
  join_index_.Configure(num_vars, std::move(specs));
}

void AlphaMemory::InsertEntry(AlphaEntry entry) {
  Metrics().alpha_insertions.Increment();
  ++column_version_;
  if (column_cache_ != nullptr) {
    column_cache_.reset();
    Metrics().columnar_batch_invalidations.Increment();
  }
  const uint32_t slot = static_cast<uint32_t>(entries_.size());
  slot_of_[EncodeTid(entry.tid)] = slot;
  if (join_index_.has_specs()) {
    // Key the entry without copying its tuple: lend the value to the
    // scratch row for evaluation, then take it back.
    scratch_row_.Set(var_ordinal_, std::move(entry.value), entry.tid);
    join_index_.AppendSlot(slot, scratch_row_);
    entry.value = std::move(scratch_row_.current[var_ordinal_]);
  }
  entries_.push_back(std::move(entry));
}

bool AlphaMemory::RemoveEntry(TupleId tid) {
  if (entries_.empty()) return false;
  size_t slot;
  auto it = slot_of_.find(EncodeTid(tid));
  if (it != slot_of_.end()) {
    slot = it->second;
    slot_of_.erase(it);
  } else {
    // The map keeps one slot per tid; an entry shadowed by a duplicate
    // insert (test-driven only) is still found by scanning.
    size_t i = 0;
    while (i < entries_.size() && !(entries_[i].tid == tid)) ++i;
    if (i == entries_.size()) return false;
    slot = i;
  }
  ++column_version_;
  if (column_cache_ != nullptr) {
    column_cache_.reset();
    Metrics().columnar_batch_invalidations.Increment();
  }
  const size_t last = entries_.size() - 1;
  join_index_.RemoveSlot(slot, last);
  if (slot != last) {
    entries_[slot] = std::move(entries_[last]);
    slot_of_[EncodeTid(entries_[slot].tid)] = static_cast<uint32_t>(slot);
  }
  entries_.pop_back();
  Metrics().alpha_removals.Increment();
  return true;
}

void AlphaMemory::Flush() {
  entries_.clear();
  slot_of_.clear();
  join_index_.Clear();
  ++column_version_;
  if (column_cache_ != nullptr) {
    column_cache_.reset();
    Metrics().columnar_batch_invalidations.Increment();
  }
}

std::shared_ptr<const ColumnBatch> AlphaMemory::ColumnView() const {
  if (column_cache_ != nullptr &&
      column_cache_->source_version() == column_version_) {
    return column_cache_;
  }
  ColumnBatchBuilder builder(spec_.relation->schema(), entries_.size());
  for (const AlphaEntry& entry : entries_) {
    builder.Append(entry.tid, entry.value);
  }
  column_cache_ = builder.Build(column_version_);
  Metrics().columnar_batches_built.Increment();
  return column_cache_;
}

std::string AlphaMemory::AuditColumnCache() const {
  if (column_cache_ == nullptr) return "";
  if (column_cache_->source_version() != column_version_) return "";
  const ColumnBatch& batch = *column_cache_;
  if (batch.num_rows() != entries_.size()) {
    return "column cache has " + std::to_string(batch.num_rows()) +
           " row(s) but the memory holds " + std::to_string(entries_.size());
  }
  const Schema& schema = spec_.relation->schema();
  for (size_t row = 0; row < batch.num_rows(); ++row) {
    const AlphaEntry& entry = entries_[row];
    if (!(batch.tids()[row] == entry.tid)) {
      return "column cache row " + std::to_string(row) + " holds " +
             batch.tids()[row].ToString() + " but the memory holds " +
             entry.tid.ToString();
    }
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      Value cached = batch.ValueAt(c, row);
      if (cached.Compare(entry.value.at(c)) != 0) {
        return "column cache cell (" + schema.attribute(c).name + ", " +
               entry.tid.ToString() + ") holds " + cached.ToString() +
               " but the memory holds " + entry.value.at(c).ToString();
      }
    }
  }
  return "";
}

void AlphaMemory::CorruptColumnCacheForTesting() {
  ColumnView();
  // The cache is logically immutable to readers; the test hook reaches
  // through that on purpose to plant a memory/batch disagreement.
  const_cast<ColumnBatch*>(column_cache_.get())  // ariel-lint: allow(const-cast)
      ->CorruptForTesting();
}

std::vector<std::string> AlphaMemory::AuditIncrementalState() const {
  std::vector<std::string> problems;
  // TID→slot map ⇔ entries. Every entry's tid must resolve through the map
  // to a slot holding that tid (for duplicate tids, to *a* matching slot),
  // and every map entry must point in-range at a matching entry.
  for (size_t s = 0; s < entries_.size(); ++s) {
    auto it = slot_of_.find(EncodeTid(entries_[s].tid));
    if (it == slot_of_.end() ||
        it->second >= entries_.size() ||
        !(entries_[it->second].tid == entries_[s].tid)) {
      problems.push_back("tid-slot map does not resolve tid " +
                         entries_[s].tid.ToString() + " (slot " +
                         std::to_string(s) + ")");
    }
  }
  for (const auto& [enc, slot] : slot_of_) {
    if (slot >= entries_.size() ||
        EncodeTid(entries_[slot].tid) != enc) {
      problems.push_back("tid-slot map points tid " +
                         DecodeTid(enc).ToString() + " at slot " +
                         std::to_string(slot) +
                         " which holds a different entry");
    }
  }
  std::vector<std::string> index_problems = join_index_.Audit(
      entries_.size(), [&](size_t slot, Row* scratch) {
        scratch->Set(var_ordinal_, entries_[slot].value, entries_[slot].tid);
      });
  for (std::string& p : index_problems) problems.push_back(std::move(p));
  return problems;
}

size_t AlphaMemory::EstimatedSize() const {
  if (is_virtual()) return spec_.relation->size();
  return entries_.size();
}

size_t AlphaMemory::FootprintBytes() const {
  size_t bytes = entries_.capacity() * sizeof(AlphaEntry);
  for (const AlphaEntry& e : entries_) {
    bytes += e.value.FootprintBytes() + e.previous.FootprintBytes();
  }
  return bytes;
}

const char* JoinBackendToString(JoinBackend backend) {
  switch (backend) {
    case JoinBackend::kTreat: return "treat";
    case JoinBackend::kRete: return "rete";
  }
  return "?";
}

RuleNetwork::RuleNetwork(std::string rule_name, uint32_t pnode_relation_id,
                         std::vector<AlphaSpec> alphas,
                         std::vector<ExprPtr> join_conjuncts,
                         JoinBackend backend)
    : rule_name_(std::move(rule_name)),
      pnode_relation_id_(pnode_relation_id),
      join_exprs_(std::move(join_conjuncts)),
      backend_(backend) {
  for (size_t i = 0; i < alphas.size(); ++i) {
    alphas_.push_back(
        std::make_unique<AlphaMemory>(std::move(alphas[i]), i));
  }
}

Status RuleNetwork::Init() {
  const size_t n = alphas_.size();
  if (n == 0) {
    return Status::SemanticError("rule \"" + rule_name_ +
                                 "\" has no tuple variables");
  }

  std::vector<PnodeVar> pnode_vars;
  for (const auto& alpha : alphas_) {
    const AlphaSpec& spec = alpha->spec();
    scope_.Add(VarBinding{ToLower(spec.var_name), &spec.relation->schema(),
                          spec.has_previous});
    pnode_vars.push_back(PnodeVar{ToLower(spec.var_name),
                                  &spec.relation->schema(),
                                  spec.has_previous});
    if (alpha->is_virtual() && spec.has_previous) {
      return Status::Internal(
          "virtual α-memories cannot hold transition conditions");
    }
    if (alpha->is_simple() && n > 1) {
      return Status::Internal(
          "simple α-memories are only valid in one-variable rules");
    }
  }
  pnode_ = std::make_unique<PNode>(pnode_relation_id_, rule_name_,
                                   std::move(pnode_vars));

  for (auto& alpha : alphas_) {
    if (alpha->spec_.selection != nullptr) {
      ARIEL_ASSIGN_OR_RETURN(alpha->compiled_selection_,
                             CompileExpr(*alpha->spec_.selection, scope_));
    }
  }

  adjacency_.assign(n, std::vector<bool>(n, false));
  for (const ExprPtr& expr : join_exprs_) {
    CompiledConjunct cc;
    for (const std::string& var : CollectTupleVars(*expr)) {
      int idx = scope_.IndexOf(var);
      if (idx < 0) {
        return Status::SemanticError("join conjunct references unknown "
                                     "variable \"" + var + "\"");
      }
      cc.vars.push_back(static_cast<size_t>(idx));
    }
    ARIEL_ASSIGN_OR_RETURN(cc.expr, CompileExpr(*expr, scope_));
    for (size_t a : cc.vars) {
      for (size_t b : cc.vars) {
        if (a != b) adjacency_[a][b] = true;
      }
    }
    ARIEL_RETURN_NOT_OK(RecordIndexJoinPaths(*expr));
    if (columnar_exec_) {
      ARIEL_RETURN_NOT_OK(
          RecordBandedProbes(join_conjuncts_.size(), *expr));
    }
    join_conjuncts_.push_back(std::move(cc));
  }
  if (join_hash_indexes_) {
    ARIEL_RETURN_NOT_OK(ConfigureAlphaJoinIndexes());
  }

  for (const auto& alpha : alphas_) {
    if (alpha->is_dynamic()) has_dynamic_ = true;
  }
  // Rete is only offered to multi-variable pattern rules: flushing dynamic
  // bindings out of β chains at every transition would reintroduce the
  // maintenance cost TREAT avoids, and one-variable rules have no joins.
  if (backend_ == JoinBackend::kRete && (has_dynamic_ || n < 2)) {
    backend_ = JoinBackend::kTreat;
  }
  if (backend_ == JoinBackend::kRete) {
    ARIEL_RETURN_NOT_OK(ConfigureBetas());  // levels 1..n-2 used
  }
  initialized_ = true;
  return Status::OK();
}

namespace {

/// True when `attrs` (compiler-lowercased) contains `attr`.
bool AttrListed(const std::vector<std::string>& attrs,
                const std::string& attr) {
  for (const std::string& a : attrs) {
    if (EqualsIgnoreCase(a, attr)) return true;
  }
  return false;
}

}  // namespace

Status RuleNetwork::ConfigureAlphaJoinIndexes() {
  const size_t n = alphas_.size();
  std::vector<std::vector<JoinKeySpec>> specs(n);
  for (const ExprPtr& expr : join_exprs_) {
    if (expr->kind != ExprKind::kBinary) continue;
    const auto& bin = static_cast<const BinaryExpr&>(*expr);
    if (bin.op != BinaryOp::kEq) continue;
    for (bool flip : {false, true}) {
      const Expr* entry_side = flip ? bin.rhs.get() : bin.lhs.get();
      const Expr* probe_side = flip ? bin.lhs.get() : bin.rhs.get();
      if (entry_side->kind != ExprKind::kColumnRef) continue;
      const auto& ref = static_cast<const ColumnRefExpr&>(*entry_side);
      if (ref.previous || ref.is_all()) continue;
      int var = scope_.IndexOf(ref.tuple_var);
      if (var < 0) continue;
      if (!alphas_[var]->stores_tuples()) continue;
      // The compiler only flags attributes it derived as equijoin keys;
      // hand-built specs without metadata stay on the scan path.
      if (!AttrListed(alphas_[var]->spec().equijoin_attrs, ref.attribute)) {
        continue;
      }
      JoinKeySpec spec;
      bool self_reference = false;
      for (const std::string& kv : CollectTupleVars(*probe_side)) {
        int idx = scope_.IndexOf(kv);
        if (idx < 0 || idx == var) {
          self_reference = true;
          break;
        }
        spec.probe_vars.push_back(static_cast<size_t>(idx));
      }
      if (self_reference || spec.probe_vars.empty()) continue;
      ARIEL_ASSIGN_OR_RETURN(spec.entry_expr,
                             CompileExpr(*entry_side, scope_));
      ARIEL_ASSIGN_OR_RETURN(spec.probe_expr,
                             CompileExpr(*probe_side, scope_));
      spec.description = entry_side->ToString() + " = " +
                         probe_side->ToString();
      specs[var].push_back(std::move(spec));
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (!specs[v].empty()) {
      alphas_[v]->ConfigureJoinIndex(n, std::move(specs[v]));
    }
  }
  return Status::OK();
}

Result<std::vector<JoinKeySpec>> RuleNetwork::DeriveBetaKeySpecs(
    size_t level) const {
  std::vector<JoinKeySpec> specs;
  if (!join_hash_indexes_) return specs;
  const size_t arriving = level + 1;
  for (const ExprPtr& expr : join_exprs_) {
    if (expr->kind != ExprKind::kBinary) continue;
    const auto& bin = static_cast<const BinaryExpr&>(*expr);
    if (bin.op != BinaryOp::kEq) continue;
    for (bool flip : {false, true}) {
      const Expr* entry_side = flip ? bin.rhs.get() : bin.lhs.get();
      const Expr* probe_side = flip ? bin.lhs.get() : bin.rhs.get();
      // Entry side: evaluable over the stored prefix [0, level]; probe
      // side: evaluable over the arriving token alone.
      bool entry_ok = true;
      bool entry_nonempty = false;
      for (const std::string& ev : CollectTupleVars(*entry_side)) {
        int idx = scope_.IndexOf(ev);
        if (idx < 0 || static_cast<size_t>(idx) > level) entry_ok = false;
        entry_nonempty = true;
      }
      if (!entry_ok || !entry_nonempty) continue;
      JoinKeySpec spec;
      bool probe_ok = true;
      for (const std::string& pv : CollectTupleVars(*probe_side)) {
        int idx = scope_.IndexOf(pv);
        if (idx < 0 || static_cast<size_t>(idx) != arriving) probe_ok = false;
        spec.probe_vars.push_back(static_cast<size_t>(idx));
      }
      if (!probe_ok || spec.probe_vars.empty()) continue;
      ARIEL_ASSIGN_OR_RETURN(spec.entry_expr,
                             CompileExpr(*entry_side, scope_));
      ARIEL_ASSIGN_OR_RETURN(spec.probe_expr,
                             CompileExpr(*probe_side, scope_));
      spec.description = entry_side->ToString() + " = " +
                         probe_side->ToString();
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

Status RuleNetwork::ConfigureBetas() {
  const size_t n = alphas_.size();
  beta_.clear();
  beta_.resize(n);
  for (size_t level = 1; level + 1 < n; ++level) {
    ARIEL_ASSIGN_OR_RETURN(std::vector<JoinKeySpec> specs,
                           DeriveBetaKeySpecs(level));
    beta_[level].Configure(n, std::move(specs));
  }
  return Status::OK();
}

Status RuleNetwork::RecordBandedProbes(size_t conjunct_idx,
                                       const Expr& conjunct) {
  if (conjunct.kind != ExprKind::kBinary) return Status::OK();
  const auto& bin = static_cast<const BinaryExpr&>(conjunct);
  if (!IsComparison(bin.op)) return Status::OK();

  // Either side of `a.x <op> <expr>` yields a probe into a's memory when
  // the column side is a bare (non-previous) reference into a stored memory
  // and the key side touches only other variables.
  for (bool flip : {false, true}) {
    const Expr* col_side = flip ? bin.rhs.get() : bin.lhs.get();
    const Expr* key_side = flip ? bin.lhs.get() : bin.rhs.get();
    if (col_side->kind != ExprKind::kColumnRef) continue;
    const auto& ref = static_cast<const ColumnRefExpr&>(*col_side);
    if (ref.previous || ref.is_all()) continue;
    int var = scope_.IndexOf(ref.tuple_var);
    if (var < 0) continue;
    if (!alphas_[var]->stores_tuples()) continue;
    int col = alphas_[var]->spec().relation->schema().IndexOf(ref.attribute);
    if (col < 0) continue;

    BandedProbe probe;
    probe.conjunct = conjunct_idx;
    probe.var = static_cast<size_t>(var);
    probe.col = static_cast<size_t>(col);
    probe.op = flip ? MirrorComparison(bin.op) : bin.op;
    bool self_reference = false;
    for (const std::string& kv : CollectTupleVars(*key_side)) {
      int idx = scope_.IndexOf(kv);
      if (idx < 0 || idx == var) {
        self_reference = true;
        break;
      }
      probe.key_vars.push_back(static_cast<size_t>(idx));
    }
    if (self_reference) continue;
    ARIEL_ASSIGN_OR_RETURN(probe.key_expr, CompileExpr(*key_side, scope_));
    banded_probes_.push_back(std::move(probe));
  }
  return Status::OK();
}

Status RuleNetwork::RecordIndexJoinPaths(const Expr& conjunct) {
  if (conjunct.kind != ExprKind::kBinary) return Status::OK();
  const auto& bin = static_cast<const BinaryExpr&>(conjunct);
  if (bin.op != BinaryOp::kEq) return Status::OK();

  // Either side of `a.x = <expr>` yields a path into a's memory when the
  // other side depends only on other variables.
  for (bool flip : {false, true}) {
    const Expr* ref_side = flip ? bin.rhs.get() : bin.lhs.get();
    const Expr* key_side = flip ? bin.lhs.get() : bin.rhs.get();
    if (ref_side->kind != ExprKind::kColumnRef) continue;
    const auto& ref = static_cast<const ColumnRefExpr&>(*ref_side);
    if (ref.previous || ref.is_all()) continue;
    int var = scope_.IndexOf(ref.tuple_var);
    if (var < 0) continue;
    if (!alphas_[var]->is_virtual()) continue;  // only virtual joins probe

    IndexJoinPath path;
    path.var = static_cast<size_t>(var);
    path.attr_name = ref.attribute;
    bool self_reference = false;
    for (const std::string& kv : CollectTupleVars(*key_side)) {
      int idx = scope_.IndexOf(kv);
      if (idx < 0 || idx == var) {
        self_reference = true;
        break;
      }
      path.key_vars.push_back(static_cast<size_t>(idx));
    }
    if (self_reference || path.key_vars.empty()) continue;
    ARIEL_ASSIGN_OR_RETURN(path.key_expr, CompileExpr(*key_side, scope_));
    index_join_paths_.push_back(std::move(path));
  }
  return Status::OK();
}

Status RuleNetwork::Arrive(const Token& token, size_t alpha_ordinal,
                           const ProcessedMemories& processed) {
  AlphaMemory* alpha = alphas_[alpha_ordinal].get();
  const size_t n = alphas_.size();
  last_trigger_ =
      LastTrigger{true, token.kind, token.relation_id, token.tid};

  // Live arrival statistics for the adaptive optimizer. Compensating
  // (rollback) tokens are replayed history, not workload, and are excluded.
  if (!compensating_) {
    ++match_stats_.arrivals;
    if (match_stats_.var_arrivals.size() != n) {
      match_stats_.var_arrivals.assign(n, 0);
    }
    ++match_stats_.var_arrivals[alpha_ordinal];
    if (token.is_insertion()) {
      ++match_stats_.plus_tokens;
    } else {
      ++match_stats_.minus_tokens;
    }
  }

  // Does this token assert a binding here, or retract one? Insertion
  // tokens assert; deletion tokens retract — except at on-delete
  // conditions, where the delete-specified − token IS the triggering event
  // (§4.3.1 case 4: "a delete −, which will match any applicable on delete
  // rule conditions"). On-delete bindings are never retracted within a
  // transition, because a deleted tuple cannot be touched again (§4.3.1).
  const bool asserts_binding =
      token.is_insertion() ||
      (alpha->spec().on_event.has_value() &&
       alpha->spec().on_event->kind == EventKind::kDelete);

  if (!asserts_binding) {
    // Deletion handling: drop the entry and delete the affected
    // instantiations directly from the conflict set (P-node); under Rete
    // the β chain sheds the affected partials too. No joins either way —
    // this asymmetry is TREAT's main advantage.
    if (alpha->stores_tuples()) alpha->RemoveEntry(token.tid);
    if (backend_ == JoinBackend::kRete) {
      ReteRetract(alpha_ordinal, token.tid);
    }
    RetractInstantiations(alpha_ordinal, token.tid);
    return Status::OK();
  }

  if (alpha->is_simple()) {
    // One-variable rule: matching data goes straight to the P-node.
    Row row(1);
    row.Set(0, token.value, token.tid);
    if (alpha->is_transition()) row.SetPrevious(0, token.previous);
    return EmitInstantiation(row);
  }

  if (alpha->stores_tuples()) {
    // Compensating + tokens must be idempotent against partially-applied
    // forward retractions: remove any surviving entry before re-inserting.
    if (compensating_) alpha->RemoveEntry(token.tid);
    alpha->InsertEntry(AlphaEntry{token.tid, token.value,
                                  alpha->is_transition() ? token.previous
                                                         : Tuple()});
  }

  if (backend_ == JoinBackend::kRete) {
    // Same idempotence for β chains: shed any partials the forward
    // retraction left behind before re-deriving them.
    if (compensating_) ReteRetract(alpha_ordinal, token.tid);
    return ReteAssert(token, alpha_ordinal, processed);
  }

  // TREAT joins exist only to feed the P-node; in compensation mode the
  // conflict set is snapshot-restored, so the whole walk is skipped.
  if (compensating_) return Status::OK();

  Row row(n);
  row.Set(alpha_ordinal, token.value, token.tid);
  if (alpha->is_transition()) row.SetPrevious(alpha_ordinal, token.previous);
  std::vector<bool> bound(n, false);
  bound[alpha_ordinal] = true;
  return ExtendJoin(token, &row, &bound, 1, processed);
}

// ---------------------------------------------------------------------------
// Rete backend
// ---------------------------------------------------------------------------

Result<bool> RuleNetwork::PrefixConjunctsHold(size_t level, size_t newly,
                                              const Row& row) const {
  for (const CompiledConjunct& cc : join_conjuncts_) {
    bool touches_new = false;
    bool in_prefix = true;
    for (size_t v : cc.vars) {
      if (v == newly) touches_new = true;
      if (v > level) in_prefix = false;
    }
    if (!touches_new || !in_prefix) continue;
    ARIEL_ASSIGN_OR_RETURN(bool ok, cc.expr->EvalPredicate(row));
    if (!ok) return false;
  }
  return true;
}

Status RuleNetwork::ReteExtend(size_t level, Row* row, const Token& token,
                               const ProcessedMemories& processed) {
  const size_t n = alphas_.size();
  if (level == n - 1) return EmitInstantiation(*row);
  if (level >= 1) beta_[level].Add(*row);

  const size_t next = level + 1;
  std::vector<bool> bound(n, false);
  for (size_t k = 0; k <= level; ++k) bound[k] = row->filled[k];
  bound[next] = true;  // mirror ExtendJoin's convention for index probing

  Status status = ForEachCandidate(
      token, next, *row, bound, processed,
      [&](const AlphaEntry& entry) -> Status {
        row->Set(next, entry.value, entry.tid);
        if (alphas_[next]->is_transition()) {
          row->SetPrevious(next, entry.previous);
        }
        ARIEL_ASSIGN_OR_RETURN(bool ok,
                               PrefixConjunctsHold(next, next, *row));
        if (!ok) return Status::OK();
        return ReteExtend(next, row, token, processed);
      });
  row->filled[next] = false;
  return status;
}

Status RuleNetwork::ReteAssert(const Token& token, size_t alpha_ordinal,
                               const ProcessedMemories& processed) {
  const size_t n = alphas_.size();
  Row row(n);
  row.Set(alpha_ordinal, token.value, token.tid);
  if (alphas_[alpha_ordinal]->is_transition()) {
    row.SetPrevious(alpha_ordinal, token.previous);
  }

  if (alpha_ordinal == 0) {
    return ReteExtend(0, &row, token, processed);
  }

  // Join the token leftward against the partials over [0, i-1], then let
  // every surviving combination cascade rightward.
  const size_t i = alpha_ordinal;
  if (i == 1) {
    // β_0 is α_0 itself: enumerate its candidates.
    std::vector<bool> bound(n, false);
    bound[1] = true;
    bound[0] = true;  // index-path convention: the probed var reads as bound
    Status status = ForEachCandidate(
        token, 0, row, bound, processed,
        [&](const AlphaEntry& entry) -> Status {
          row.Set(0, entry.value, entry.tid);
          if (alphas_[0]->is_transition()) row.SetPrevious(0, entry.previous);
          ARIEL_ASSIGN_OR_RETURN(bool ok, PrefixConjunctsHold(1, 1, row));
          if (!ok) return Status::OK();
          return ReteExtend(1, &row, token, processed);
        });
    row.filled[0] = false;
    return status;
  }

  // i >= 2: join against the stored β_{i-1} partials. ReteExtend only
  // appends to β levels >= i, so indexing into the level is safe. When an
  // equijoin key between the prefix and the arriving variable exists, the
  // token's key selects the matching partials directly instead of
  // iterating the whole level.
  const BetaMemory& left = beta_[i - 1];
  const std::vector<Row>& lefts = left.rows();

  auto extend = [&](const Row& partial) -> Status {
    Row combined = partial;
    combined.MergeFrom(row);
    ARIEL_ASSIGN_OR_RETURN(bool ok, PrefixConjunctsHold(i, i, combined));
    if (!ok) return Status::OK();
    return ReteExtend(i, &combined, token, processed);
  };

  if (left.index().has_specs()) {
    int spec = left.index().FindUsableSpec(row.filled);
    if (spec >= 0) {
      const std::vector<uint32_t>* slots =
          left.Probe(static_cast<size_t>(spec), row);
      if (slots != nullptr) {
        Metrics().join_hash_probes.Increment();
        Metrics().join_hash_hits.Increment(slots->size());
        Metrics().join_probes.Increment(slots->size());
        for (uint32_t s : *slots) {
          ARIEL_RETURN_NOT_OK(extend(lefts[s]));
        }
        return Status::OK();
      }
    }
  }
  Metrics().join_scan_fallbacks.Increment();
  Metrics().join_probes.Increment(lefts.size());
  for (size_t idx = 0; idx < lefts.size(); ++idx) {
    ARIEL_RETURN_NOT_OK(extend(lefts[idx]));
  }
  return Status::OK();
}

void RuleNetwork::ReteRetract(size_t var, TupleId tid) {
  // The per-level postings map (var, tid) → slots, so retraction touches
  // only the affected partials instead of scanning each level.
  for (size_t level = std::max<size_t>(var, 1); level + 1 < alphas_.size();
       ++level) {
    if (level >= beta_.size()) break;
    beta_[level].RemoveBindings(var, tid);
  }
}

Status RuleNetwork::PrimeBetas(Optimizer* optimizer) {
  const size_t n = alphas_.size();
  if (backend_ != JoinBackend::kRete) return Status::OK();
  ARIEL_RETURN_NOT_OK(ConfigureBetas());
  for (size_t level = 1; level + 1 < n; ++level) {
    // Plan the prefix join over variables [0, level] using their
    // selections plus the join conjuncts fully contained in the prefix.
    std::vector<PlanVar> vars;
    std::vector<ExprPtr> conjuncts;
    for (size_t v = 0; v <= level; ++v) {
      vars.push_back(PlanVar{alphas_[v]->spec().var_name,
                             alphas_[v]->spec().relation, false});
      if (alphas_[v]->spec().selection != nullptr) {
        conjuncts.push_back(alphas_[v]->spec().selection->Clone());
      }
    }
    for (const ExprPtr& join : join_exprs_) {
      bool in_prefix = true;
      for (const std::string& name : CollectTupleVars(*join)) {
        int idx = scope_.IndexOf(name);
        if (idx < 0 || static_cast<size_t>(idx) > level) in_prefix = false;
      }
      if (in_prefix) conjuncts.push_back(join->Clone());
    }
    ExprPtr qual = CombineConjuncts(std::move(conjuncts));
    ARIEL_ASSIGN_OR_RETURN(Plan plan, optimizer->BuildPlan(vars, qual.get()));
    ARIEL_ASSIGN_OR_RETURN(std::vector<Row> rows, plan.CollectRows());
    for (const Row& prefix_row : rows) {
      Row widened(n);
      for (size_t v = 0; v <= level; ++v) {
        widened.Set(v, prefix_row.current[v], prefix_row.tids[v]);
      }
      beta_[level].Add(std::move(widened));
    }
  }
  return Status::OK();
}

Status RuleNetwork::ExtendJoin(const Token& token, Row* row,
                               std::vector<bool>* bound, size_t num_bound,
                               const ProcessedMemories& processed) {
  const size_t n = alphas_.size();
  if (num_bound == n) return EmitInstantiation(*row);

  int next = -1;
  if (!planned_join_order_.empty()) {
    // Explicit probe order installed by the adaptive optimizer: bind the
    // earliest unbound ordinal in the plan.
    for (size_t v : planned_join_order_) {
      if (!(*bound)[v]) {
        next = static_cast<int>(v);
        break;
      }
    }
  }
  if (next < 0) {
    // Join-order heuristic: prefer a variable connected to the bound set by
    // some join conjunct; among those, the smallest memory.
    bool next_connected = false;
    size_t next_size = std::numeric_limits<size_t>::max();
    for (size_t j = 0; j < n; ++j) {
      if ((*bound)[j]) continue;
      bool connected = false;
      for (size_t i = 0; i < n && !connected; ++i) {
        if ((*bound)[i] && adjacency_[i][j]) connected = true;
      }
      size_t size = alphas_[j]->EstimatedSize();
      if (next < 0 || (connected && !next_connected) ||
          (connected == next_connected && size < next_size)) {
        next = static_cast<int>(j);
        next_connected = connected;
        next_size = size;
      }
    }
  }
  const size_t j = static_cast<size_t>(next);

  (*bound)[j] = true;
  Status status = ForEachCandidate(
      token, j, *row, *bound, processed,
      [&](const AlphaEntry& entry) -> Status {
        row->Set(j, entry.value, entry.tid);
        if (alphas_[j]->is_transition()) row->SetPrevious(j, entry.previous);
        ARIEL_ASSIGN_OR_RETURN(bool ok, JoinConjunctsHold(j, *bound, *row));
        if (!ok) return Status::OK();
        return ExtendJoin(token, row, bound, num_bound + 1, processed);
      });
  (*bound)[j] = false;
  row->filled[j] = false;
  return status;
}

template <typename Fn>
Status RuleNetwork::ForEachCandidate(
    const Token& token, size_t j, const Row& row,
    const std::vector<bool>& bound, const ProcessedMemories& processed,
    Fn&& fn) {
  AlphaMemory* alpha = alphas_[j].get();

  if (alpha->stores_tuples()) {
    // Iterate over a snapshot index range: fn never mutates α-memories.
    const auto& entries = alpha->entries();
    // Keyed path: when an equijoin key into this memory is fully bound,
    // evaluate it once against the partial row and emit only the bucket —
    // O(1 + matches) instead of O(|α|). Residual conjuncts are still
    // verified per candidate by the caller.
    const JoinKeyIndex& jidx = alpha->join_index();
    if (jidx.has_specs()) {
      int spec = jidx.FindUsableSpec(bound);
      if (spec >= 0) {
        const std::vector<uint32_t>* slots =
            jidx.Probe(static_cast<size_t>(spec), row);
        if (slots != nullptr) {
          Metrics().join_hash_probes.Increment();
          Metrics().join_hash_hits.Increment(slots->size());
          Metrics().join_probes.Increment(slots->size());
          for (uint32_t s : *slots) {
            ARIEL_RETURN_NOT_OK(fn(entries[s]));
          }
          return Status::OK();
        }
      }
    }
    // Scan fallback (non-equi conjunct, unbound key, or disabled spec).
    // join_probes counts the candidates actually handed to fn.
    Metrics().join_scan_fallbacks.Increment();

    // Columnar prefilter: AND the banded form of a *prefix* of the
    // conjuncts this join step will evaluate into one mask over the
    // memory's column view, then hand only survivors to fn — pruned
    // candidates are never deep-copied into the partial row. The prefix
    // discipline keeps error behaviour exact: a pruned candidate fails an
    // earlier, error-free conjunct, so the row path would have rejected it
    // before reaching any erroring one. Survivors are still re-verified by
    // the caller.
    std::vector<uint8_t> mask;
    bool prefiltered = false;
    if (columnar_exec_ && !banded_probes_.empty() &&
        entries.size() >= kColumnarPrefilterMinEntries) {
      std::shared_ptr<const ColumnBatch> view;
      for (size_t ci = 0; ci < join_conjuncts_.size(); ++ci) {
        const CompiledConjunct& cc = join_conjuncts_[ci];
        bool touches_j = false;
        bool all_bound = true;
        for (size_t v : cc.vars) {
          if (v == j) touches_j = true;
          if (!bound[v]) all_bound = false;
        }
        if (!touches_j || !all_bound) continue;  // not evaluated this step
        const BandedProbe* probe = nullptr;
        for (const BandedProbe& p : banded_probes_) {
          if (p.conjunct == ci && p.var == j) {
            bool usable = true;
            for (size_t kv : p.key_vars) {
              if (kv == j || !bound[kv]) usable = false;
            }
            if (usable) probe = &p;
            break;
          }
        }
        // Prefix ends at the first conjunct without a usable probe, or
        // whose key errors — the caller row-evaluates from there on.
        if (probe == nullptr) break;
        Result<Value> key = probe->key_expr->Eval(row);
        if (!key.ok()) break;
        if (view == nullptr) {
          view = alpha->ColumnView();
          mask.assign(entries.size(), 1);
        }
        AndCompareColumnScalar(*view, probe->col, probe->op, *key, &mask);
        prefiltered = true;
      }
    }

    size_t emitted = 0;
    size_t pruned = 0;
    Status status = Status::OK();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (prefiltered && mask[i] == 0) {
        ++pruned;
        continue;
      }
      ++emitted;
      status = fn(entries[i]);
      if (!status.ok()) break;
    }
    if (pruned > 0) Metrics().columnar_join_prefiltered.Increment(pruned);
    Metrics().join_probes.Increment(emitted);
    return status;
  }

  if (!alpha->is_virtual()) {
    return Status::Internal("join through a simple α-memory");
  }

  // Virtual α-memory (§4.2): derive the node's value from the base
  // relation through the stored predicate. The token's own tuple is already
  // in the relation, so it is skipped here and supplied explicitly iff this
  // memory is in ProcessedMemories — the self-join protocol that makes a
  // token join to itself exactly the right number of times.
  const HeapRelation* relation = alpha->spec().relation;
  const CompiledExpr* selection = alpha->compiled_selection();
  Row scratch(alphas_.size());

  // join_probes / join_index_probes count the candidates actually emitted
  // to fn — after the self-skip, liveness, and selection filters.
  bool via_index = false;
  auto emit = [&](TupleId tid) -> Status {
    if (tid == token.tid) return Status::OK();
    const Tuple* tuple = relation->Get(tid);
    if (tuple == nullptr) return Status::OK();
    if (selection != nullptr) {
      scratch.Set(j, *tuple, tid);
      ARIEL_ASSIGN_OR_RETURN(bool keep, selection->EvalPredicate(scratch));
      if (!keep) return Status::OK();
    }
    Metrics().join_probes.Increment();
    if (via_index) Metrics().join_index_probes.Increment();
    return fn(AlphaEntry{tid, *tuple, Tuple()});
  };

  // Prefer an index probe when an equijoin path into this memory has its
  // key side fully bound and the relation has a matching B+tree (§4.2's
  // "index scan or sequential scan" optimization choice).
  const BTreeIndex* index = nullptr;
  const IndexJoinPath* chosen = nullptr;
  for (const IndexJoinPath& path : index_join_paths_) {
    if (path.var != j) continue;
    bool usable = true;
    for (size_t kv : path.key_vars) {
      if (!bound[kv] || kv == j) usable = false;
    }
    if (!usable) continue;
    const BTreeIndex* candidate = relation->GetIndex(path.attr_name);
    if (candidate != nullptr) {
      index = candidate;
      chosen = &path;
      break;
    }
  }

  if (chosen != nullptr) {
    via_index = true;
    ARIEL_ASSIGN_OR_RETURN(Value key, chosen->key_expr->Eval(row));
    std::vector<TupleId> tids;
    index->Lookup(key, &tids);
    for (TupleId tid : tids) {
      ARIEL_RETURN_NOT_OK(emit(tid));
    }
    via_index = false;
  } else {
    std::vector<TupleId> tids = relation->AllTupleIds();
    Metrics().virtual_alpha_scans.Increment();
    for (TupleId tid : tids) {
      ARIEL_RETURN_NOT_OK(emit(tid));
    }
  }

  // Self-inclusion applies to asserting tokens only. A deletion token that
  // reached this memory was *removed* from it on arrival — a stored memory
  // would no longer hold it — so an on-delete event binding joining through
  // a virtual memory of the same relation must not pair with the dying
  // tuple.
  if (token.is_insertion() && processed.contains(alpha)) {
    ARIEL_RETURN_NOT_OK(fn(AlphaEntry{token.tid, token.value, Tuple()}));
  }
  return Status::OK();
}

Result<bool> RuleNetwork::JoinConjunctsHold(size_t j,
                                            const std::vector<bool>& bound,
                                            const Row& row) const {
  for (const CompiledConjunct& cc : join_conjuncts_) {
    bool touches_j = false;
    bool all_bound = true;
    for (size_t v : cc.vars) {
      if (v == j) touches_j = true;
      if (!bound[v]) all_bound = false;
    }
    if (!touches_j || !all_bound) continue;
    ARIEL_ASSIGN_OR_RETURN(bool ok, cc.expr->EvalPredicate(row));
    if (!ok) return false;
  }
  return true;
}

Status RuleNetwork::EmitInstantiation(const Row& row) {
  if (compensating_) return Status::OK();
  if (staged_sink_ == nullptr) return pnode_->Insert(row);
  StagedDelta delta;
  delta.token_seq = staged_token_seq_;
  delta.is_insert = true;
  delta.row = row;
  staged_sink_->push_back(std::move(delta));
  return Status::OK();
}

void RuleNetwork::RetractInstantiations(size_t var_ordinal, TupleId tid) {
  if (compensating_) return;
  if (staged_sink_ == nullptr) {
    pnode_->RemoveByTid(var_ordinal, tid);
    return;
  }
  StagedDelta delta;
  delta.token_seq = staged_token_seq_;
  delta.var_ordinal = var_ordinal;
  delta.tid = tid;
  staged_sink_->push_back(std::move(delta));
}

Status RuleNetwork::ApplyStagedDelta(const StagedDelta& delta) {
  if (delta.is_insert) return pnode_->Insert(delta.row);
  pnode_->RemoveByTid(delta.var_ordinal, delta.tid);
  return Status::OK();
}

void RuleNetwork::FlushDynamicMemories() {
  for (auto& alpha : alphas_) {
    if (alpha->is_dynamic()) alpha->Flush();
  }
}

Status RuleNetwork::Prime(Optimizer* optimizer, bool load_pnode) {
  // Load stored α-memories from the base relations.
  for (auto& alpha : alphas_) {
    if (alpha->kind() != AlphaKind::kStored) continue;
    alpha->Flush();
    const HeapRelation* relation = alpha->spec().relation;
    const CompiledExpr* selection = alpha->compiled_selection();
    Row scratch(alphas_.size());
    for (TupleId tid : relation->AllTupleIds()) {
      const Tuple* tuple = relation->Get(tid);
      if (tuple == nullptr) continue;
      if (selection != nullptr) {
        scratch.Set(alpha->var_ordinal(), *tuple, tid);
        ARIEL_ASSIGN_OR_RETURN(bool keep, selection->EvalPredicate(scratch));
        if (!keep) continue;
      }
      alpha->InsertEntry(AlphaEntry{tid, *tuple, Tuple()});
    }
  }

  // Load the P-node by running a query equivalent to the whole condition —
  // but only for fully pattern-based rules: event and transition bindings
  // cannot exist at activation time.
  for (const auto& alpha : alphas_) {
    if (alpha->is_dynamic() || alpha->is_transition() ||
        alpha->spec().on_event.has_value()) {
      return Status::OK();
    }
  }
  ARIEL_RETURN_NOT_OK(PrimeBetas(optimizer));
  // Re-planning rebuilds α/β state but carries the history-dependent
  // conflict set over from the old network (PNode::RestoreState) instead of
  // recomputing it — drained instantiations must stay drained.
  if (!load_pnode) return Status::OK();
  ARIEL_ASSIGN_OR_RETURN(std::vector<Row> rows,
                         RecomputeInstantiations(optimizer));
  pnode_->Clear();
  for (const Row& row : rows) {
    ARIEL_RETURN_NOT_OK(pnode_->Insert(row));
  }
  return Status::OK();
}

Status RuleNetwork::set_planned_join_order(std::vector<size_t> order) {
  if (order.empty()) {
    planned_join_order_.clear();
    return Status::OK();
  }
  const size_t n = alphas_.size();
  std::vector<bool> seen(n, false);
  if (order.size() != n) {
    return Status::InvalidArgument("planned join order must cover all " +
                                   std::to_string(n) + " variables");
  }
  for (size_t v : order) {
    if (v >= n || seen[v]) {
      return Status::InvalidArgument(
          "planned join order is not a permutation of the variable "
          "ordinals");
    }
    seen[v] = true;
  }
  planned_join_order_ = std::move(order);
  return Status::OK();
}

Result<std::vector<Row>> RuleNetwork::RecomputeInstantiations(
    Optimizer* optimizer) const {
  for (const auto& alpha : alphas_) {
    if (alpha->is_dynamic() || alpha->is_transition() ||
        alpha->spec().on_event.has_value()) {
      return Status::InvalidArgument(
          "cannot recompute instantiations of a rule with event or "
          "transition conditions");
    }
  }
  std::vector<PlanVar> vars;
  std::vector<ExprPtr> conjuncts;
  for (const auto& alpha : alphas_) {
    vars.push_back(PlanVar{alpha->spec().var_name, alpha->spec().relation,
                           false});
    if (alpha->spec().selection != nullptr) {
      conjuncts.push_back(alpha->spec().selection->Clone());
    }
  }
  for (const ExprPtr& expr : join_exprs_) conjuncts.push_back(expr->Clone());
  ExprPtr qual = CombineConjuncts(std::move(conjuncts));
  ARIEL_ASSIGN_OR_RETURN(Plan plan, optimizer->BuildPlan(vars, qual.get()));
  return plan.CollectRows();
}

std::vector<std::string> RuleNetwork::AuditJoinIndexes() const {
  std::vector<std::string> problems;
  for (const auto& alpha : alphas_) {
    for (std::string& p : alpha->AuditIncrementalState()) {
      problems.push_back("var " + alpha->spec().var_name + ": " +
                         std::move(p));
    }
  }
  for (size_t level = 1; level + 1 < beta_.size(); ++level) {
    for (std::string& p : beta_[level].AuditIndexes()) {
      problems.push_back("beta[" + std::to_string(level) + "]: " +
                         std::move(p));
    }
  }
  return problems;
}

size_t RuleNetwork::AlphaFootprintBytes() const {
  size_t bytes = 0;
  for (const auto& alpha : alphas_) bytes += alpha->FootprintBytes();
  return bytes;
}

size_t RuleNetwork::BetaFootprintBytes() const {
  size_t bytes = 0;
  for (const auto& level : beta_) {
    bytes += level.rows().capacity() * sizeof(Row);
    for (const Row& row : level.rows()) {
      for (const Tuple& t : row.current) bytes += t.FootprintBytes();
    }
  }
  return bytes;
}

std::vector<size_t> RuleNetwork::BetaSizes() const {
  std::vector<size_t> sizes;
  for (size_t level = 1; level + 1 < beta_.size(); ++level) {
    sizes.push_back(beta_[level].rows().size());
  }
  return sizes;
}

std::string RuleNetwork::ToString() const {
  std::string out = std::string("A-TREAT network for rule \"") + rule_name_ +
                    "\" [backend: " + JoinBackendToString(backend_) + "]\n";
  out += "  root\n";
  for (const auto& alpha : alphas_) {
    const AlphaSpec& spec = alpha->spec();
    out += "  alpha(" + spec.var_name + " in " + spec.relation->name() +
           ") [" + AlphaKindToString(spec.kind) + "]";
    if (spec.on_event.has_value()) {
      out += " on " + spec.on_event->ToString();
    }
    if (spec.selection != nullptr) {
      out += ": " + spec.selection->ToString();
    }
    if (alpha->stores_tuples()) {
      out += "  {" + std::to_string(alpha->entries().size()) + " tuples}";
    }
    out += "\n";
  }
  for (const ExprPtr& join : join_exprs_) {
    out += "  join: " + join->ToString() + "\n";
  }
  if (!planned_join_order_.empty()) {
    out += "  planned join order:";
    for (size_t v : planned_join_order_) {
      out += " " + scope_.var(v).name;
    }
    out += "\n";
  }
  for (const IndexJoinPath& path : index_join_paths_) {
    out += "  index probe available: " + scope_.var(path.var).name + "." +
           path.attr_name + " = " + "<bound key>\n";
  }
  for (const auto& alpha : alphas_) {
    const JoinKeyIndex& jidx = alpha->join_index();
    for (size_t i = 0; i < jidx.num_specs(); ++i) {
      out += "  hash index on " + alpha->spec().var_name + ": " +
             jidx.spec(i).description +
             (jidx.spec_enabled(i) ? "" : " [disabled]") + "\n";
    }
  }
  out += "  P(" + rule_name_ + "): " + std::to_string(pnode_->size()) +
         " instantiations\n";
  return out;
}

}  // namespace ariel
