#ifndef ARIEL_NETWORK_JOIN_INDEX_H_
#define ARIEL_NETWORK_JOIN_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/expr.h"
#include "exec/row.h"
#include "storage/tuple.h"
#include "types/value.h"
#include "util/status.h"

namespace ariel {

/// One equijoin key usable to probe a join memory (a stored α-memory or a
/// Rete β-level), derived from an equality join conjunct `<entry side> =
/// <probe side>`:
///   - `entry_expr` is evaluated over a memory entry's own bindings when the
///     entry is stored, producing the bucket key;
///   - `probe_expr` is evaluated once over the partial row driving the join
///     (possible iff all of `probe_vars` are bound), replacing the
///     per-entry conjunct evaluation of the scan path.
/// Value::Hash is consistent with Value::operator==, which is exactly the
/// semantics of BinaryOp::kEq, so a bucket holds precisely the entries for
/// which the originating conjunct evaluates true.
struct JoinKeySpec {
  CompiledExprPtr entry_expr;
  CompiledExprPtr probe_expr;
  std::vector<size_t> probe_vars;
  std::string description;  // e.g. "d.dno = e.dno", for explain output
};

/// Value-keyed hash buckets over the slots of a backing entry vector. The
/// owner calls AppendSlot / RemoveSlot / Clear in lockstep with its vector
/// (RemoveSlot assumes swap-and-pop removal), so bucket contents stay a
/// partition of [0, size). Keys are precomputed per slot: removal and
/// swap-moves never re-evaluate the key expressions.
///
/// A spec whose entry key cannot be evaluated for some entry (e.g. a
/// hand-built entry with an empty tuple) is disabled permanently: the memory
/// degrades to the scan path for that key instead of failing token
/// processing.
class JoinKeyIndex {
 public:
  /// `num_vars` sizes the scratch rows used by Audit.
  void Configure(size_t num_vars, std::vector<JoinKeySpec> specs);

  bool has_specs() const { return !specs_.empty(); }
  size_t num_specs() const { return specs_.size(); }
  const JoinKeySpec& spec(size_t i) const { return specs_[i].spec; }
  bool spec_enabled(size_t i) const { return specs_[i].enabled; }

  /// Keys the new entry at `slot` (which must equal the backing vector's
  /// size before the push) under every enabled spec. `row` carries the
  /// entry's bindings for whatever slots the entry expressions read.
  void AppendSlot(size_t slot, const Row& row);

  /// The backing vector removed `slot` by swapping the entry at `last_slot`
  /// into it (no swap happened when slot == last_slot) and popping.
  void RemoveSlot(size_t slot, size_t last_slot);

  void Clear();

  /// First enabled spec whose probe side is fully bound, or -1.
  int FindUsableSpec(const std::vector<bool>& bound) const;

  /// Evaluates spec `spec_idx`'s probe key over `row` and returns the
  /// matching slots (possibly empty). Returns nullptr when the probe is
  /// unavailable (spec disabled, key evaluation failed) — the caller must
  /// fall back to scanning.
  const std::vector<uint32_t>* Probe(size_t spec_idx, const Row& row) const;

  /// Recomputes every slot's key (the caller's `fill` binds slot `s`'s
  /// entry into the scratch row) and cross-checks the buckets both ways:
  /// each bucket member must be an in-range slot whose key matches its
  /// bucket, and each of the `num_slots` slots must appear in exactly one
  /// bucket exactly once. Returns human-readable problems (empty = ok).
  template <typename FillFn>
  std::vector<std::string> Audit(size_t num_slots, FillFn&& fill) const {
    std::vector<std::string> problems;
    for (size_t si = 0; si < specs_.size(); ++si) {
      const SpecState& state = specs_[si];
      if (!state.enabled) continue;
      if (state.slot_keys.size() != num_slots) {
        problems.push_back("hash index [" + state.spec.description + "] has " +
                           std::to_string(state.slot_keys.size()) +
                           " keyed slots but the memory holds " +
                           std::to_string(num_slots) + " entries");
        continue;
      }
      Row scratch(num_vars_);
      for (size_t s = 0; s < num_slots; ++s) {
        fill(s, &scratch);
        Result<Value> key = state.spec.entry_expr->Eval(scratch);
        if (!key.ok()) {
          problems.push_back("hash index [" + state.spec.description +
                             "] cannot re-key slot " + std::to_string(s) +
                             ": " + key.status().ToString());
          continue;
        }
        if (!(key.value() == state.slot_keys[s])) {
          problems.push_back("hash index [" + state.spec.description +
                             "] stores key " + state.slot_keys[s].ToString() +
                             " for slot " + std::to_string(s) +
                             " but the entry keys to " +
                             key.value().ToString());
        }
      }
      AuditBuckets(state, num_slots, &problems);
    }
    return problems;
  }

  /// Test-only corruption hook: plants `slot` into the bucket for `key`
  /// without touching the precomputed slot keys, simulating a missed
  /// maintenance update for the auditor corruption tests.
  void PlantBucketEntryForTesting(size_t spec_idx, const Value& key,
                                  uint32_t slot);

 private:
  struct SpecState {
    JoinKeySpec spec;
    bool enabled = true;
    std::unordered_map<Value, std::vector<uint32_t>, ValueHash> buckets;
    std::vector<Value> slot_keys;  // parallel to the backing entry vector
  };

  void Disable(SpecState* state);
  void AuditBuckets(const SpecState& state, size_t num_slots,
                    std::vector<std::string>* problems) const;

  size_t num_vars_ = 1;
  std::vector<SpecState> specs_;
};

/// One Rete β-level: partial-match rows plus (a) per-variable postings from
/// bound tuple ids to slots, making retraction O(affected) instead of a
/// level scan, and (b) a JoinKeyIndex over the partials so a token arriving
/// at the next variable probes by key instead of iterating the level.
/// Rows are removed by swap-and-pop; slot numbers are internal.
class BetaMemory {
 public:
  void Configure(size_t num_vars, std::vector<JoinKeySpec> specs);

  const std::vector<Row>& rows() const { return rows_; }
  const JoinKeyIndex& index() const { return index_; }
  JoinKeyIndex* mutable_index() { return &index_; }

  void Add(Row row);
  void Clear();

  /// Removes every partial binding (var, tid). Returns the number removed.
  size_t RemoveBindings(size_t var, TupleId tid);

  /// Keyed lookup: slots of the partials whose entry key under `spec_idx`
  /// matches `probe_row` (see JoinKeyIndex::Probe; nullptr = fall back to
  /// scanning rows()).
  const std::vector<uint32_t>* Probe(size_t spec_idx,
                                     const Row& probe_row) const {
    return index_.Probe(spec_idx, probe_row);
  }

  /// Cross-checks the postings and the hash index against rows().
  std::vector<std::string> AuditIndexes() const;

 private:
  void RemoveSlot(uint32_t slot);

  size_t num_vars_ = 0;
  std::vector<Row> rows_;
  /// postings_[var][EncodeTid(tid)] = slots of rows binding (var, tid).
  std::vector<std::unordered_map<int64_t, std::vector<uint32_t>>> postings_;
  JoinKeyIndex index_;
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_JOIN_INDEX_H_
