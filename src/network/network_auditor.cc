#include "network/network_auditor.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/row.h"
#include "storage/heap_relation.h"
#include "storage/tuple.h"

namespace ariel {

const char* AuditViolationKindToString(AuditViolationKind kind) {
  switch (kind) {
    case AuditViolationKind::kAlphaMissing: return "alpha-missing";
    case AuditViolationKind::kAlphaExtra: return "alpha-extra";
    case AuditViolationKind::kAlphaStale: return "alpha-stale";
    case AuditViolationKind::kAlphaDuplicate: return "alpha-duplicate";
    case AuditViolationKind::kDynamicNotFlushed: return "dynamic-not-flushed";
    case AuditViolationKind::kPnodeDangling: return "pnode-dangling";
    case AuditViolationKind::kPnodeStale: return "pnode-stale";
    case AuditViolationKind::kIslInconsistent: return "isl-inconsistent";
    case AuditViolationKind::kJoinIndexInconsistent:
      return "join-index-inconsistent";
    case AuditViolationKind::kStagedDeltasPending:
      return "staged-deltas-pending";
    case AuditViolationKind::kUndoResidue:
      return "undo-residue";
    case AuditViolationKind::kColumnCacheIncoherent:
      return "column-cache-incoherent";
  }
  return "unknown";
}

std::string AuditViolation::ToString() const {
  return std::string(AuditViolationKindToString(kind)) + " [" + rule + "] " +
         detail;
}

namespace {

void Report(std::vector<AuditViolation>* out, AuditViolationKind kind,
            const std::string& rule, std::string detail) {
  out->push_back(AuditViolation{kind, rule, std::move(detail)});
}

/// Names one α-memory for violation messages: "var e (stored over emp)".
std::string DescribeAlpha(const AlphaMemory& alpha) {
  return "var " + alpha.spec().var_name + " (" +
         AlphaKindToString(alpha.kind()) + " over " +
         alpha.spec().relation->name() + ")";
}

/// Recomputes the set of base tuples this memory's selection predicate
/// admits, keyed by encoded tid.
Result<std::unordered_map<int64_t, const Tuple*>> ExpectedAlphaContents(
    const RuleNetwork& rule, const AlphaMemory& alpha) {
  const HeapRelation* base = alpha.spec().relation;
  const CompiledExpr* selection = alpha.compiled_selection();
  std::unordered_map<int64_t, const Tuple*> expected;
  for (TupleId tid : base->AllTupleIds()) {
    const Tuple* tuple = base->Get(tid);
    if (tuple == nullptr) continue;
    if (selection != nullptr) {
      Row scratch(rule.num_vars());
      scratch.Set(alpha.var_ordinal(), *tuple, tid);
      ARIEL_ASSIGN_OR_RETURN(bool matches, selection->EvalPredicate(scratch));
      if (!matches) continue;
    }
    expected.emplace(EncodeTid(tid), tuple);
  }
  return expected;
}

Status AuditAlphaMemory(const RuleNetwork& rule, const AlphaMemory& alpha,
                        std::vector<AuditViolation>* out) {
  const std::string& name = rule.rule_name();
  const std::string where = DescribeAlpha(alpha);

  // Dynamic memories hold transition-scoped bindings; at quiescence the
  // end-of-transition flush must have emptied them (§4.3.2).
  if (alpha.is_dynamic()) {
    if (!alpha.entries().empty()) {
      Report(out, AuditViolationKind::kDynamicNotFlushed, name,
             where + " holds " + std::to_string(alpha.entries().size()) +
                 " entries at quiescence");
    }
    return Status::OK();
  }
  // Virtual and simple memories store nothing to cross-check.
  if (!alpha.stores_tuples()) return Status::OK();

  // A materialized column view must mirror the entry vector cell-for-cell
  // (the batch the ForEachCandidate prefilter masks against).
  if (std::string problem = alpha.AuditColumnCache(); !problem.empty()) {
    Report(out, AuditViolationKind::kColumnCacheIncoherent, name,
           where + ": " + std::move(problem));
  }

  ARIEL_ASSIGN_OR_RETURN(auto expected, ExpectedAlphaContents(rule, alpha));

  const HeapRelation* base = alpha.spec().relation;
  std::unordered_set<int64_t> seen;
  for (const AlphaEntry& entry : alpha.entries()) {
    const int64_t enc = EncodeTid(entry.tid);
    if (!seen.insert(enc).second) {
      Report(out, AuditViolationKind::kAlphaDuplicate, name,
             where + " stores tid " + entry.tid.ToString() + " twice");
      continue;
    }
    auto it = expected.find(enc);
    if (it == expected.end()) {
      const bool live = base->Get(entry.tid) != nullptr;
      Report(out, AuditViolationKind::kAlphaExtra, name,
             where + " stores tid " + entry.tid.ToString() +
                 (live ? " whose tuple fails the selection predicate"
                       : " which is no longer live in the base relation"));
      continue;
    }
    if (!(entry.value == *it->second)) {
      Report(out, AuditViolationKind::kAlphaStale, name,
             where + " stores " + entry.value.ToString() + " for tid " +
                 entry.tid.ToString() + " but the base tuple is " +
                 it->second->ToString());
    }
    expected.erase(it);
  }
  for (const auto& [enc, tuple] : expected) {
    Report(out, AuditViolationKind::kAlphaMissing, name,
           where + " is missing tid " + DecodeTid(enc).ToString() + " = " +
               tuple->ToString() + " which satisfies the selection predicate");
  }
  return Status::OK();
}

/// Validates that every instantiation in the P-node binds live base tuples
/// with current values. Event and transition bindings are skipped: they
/// legitimately reference transition history (e.g. a deleted tuple's final
/// value), not current base contents.
void AuditPnode(const RuleNetwork& rule, std::vector<AuditViolation>* out) {
  const PNode* pnode = rule.pnode();
  if (pnode == nullptr) return;
  const std::string& name = rule.rule_name();
  pnode->relation().ForEach([&](TupleId, const Tuple& stored) {
    Row row = pnode->ToRow(stored);
    for (size_t i = 0; i < rule.num_vars(); ++i) {
      const AlphaMemory* alpha = rule.alpha(i);
      if (alpha->spec().on_event.has_value() || alpha->is_transition() ||
          alpha->is_dynamic()) {
        continue;
      }
      const HeapRelation* base = alpha->spec().relation;
      const Tuple* tuple = base->Get(row.tids[i]);
      if (tuple == nullptr) {
        Report(out, AuditViolationKind::kPnodeDangling, name,
               "instantiation binds " + alpha->spec().var_name + " to tid " +
                   row.tids[i].ToString() + " which is no longer live in " +
                   base->name());
        continue;
      }
      if (!(row.current[i] == *tuple)) {
        Report(out, AuditViolationKind::kPnodeStale, name,
               "instantiation binds " + alpha->spec().var_name + " to " +
                   row.current[i].ToString() + " but tid " +
                   row.tids[i].ToString() + " now holds " + tuple->ToString());
      }
    }
  });
}

}  // namespace

Status NetworkAuditor::AuditRule(const RuleNetwork& rule,
                                 std::vector<AuditViolation>* out) {
  // A batch flush must re-enable live P-node mutation before it returns;
  // staging still active at quiescence means a merge never ran.
  if (rule.staging_active()) {
    Report(out, AuditViolationKind::kStagedDeltasPending, rule.rule_name(),
           "rule is still staging P-node deltas at quiescence");
  }
  for (size_t i = 0; i < rule.num_vars(); ++i) {
    ARIEL_RETURN_NOT_OK(AuditAlphaMemory(rule, *rule.alpha(i), out));
  }
  // Hash join indexes and TID→slot retraction maps must mirror the entry
  // vectors they accelerate (membership both ways).
  for (std::string& problem : rule.AuditJoinIndexes()) {
    Report(out, AuditViolationKind::kJoinIndexInconsistent, rule.rule_name(),
           std::move(problem));
  }
  AuditPnode(rule, out);
  return Status::OK();
}

void NetworkAuditor::AuditSelection(const SelectionNetwork& selection,
                                    std::vector<AuditViolation>* out) {
  for (std::string& problem : selection.AuditIndexes()) {
    Report(out, AuditViolationKind::kIslInconsistent, "selection-network",
           std::move(problem));
  }
}

Result<std::vector<AuditViolation>> NetworkAuditor::AuditAtQuiescence(
    const std::vector<const RuleNetwork*>& rules,
    const SelectionNetwork& selection) {
  std::vector<AuditViolation> violations;
  for (const RuleNetwork* rule : rules) {
    ARIEL_RETURN_NOT_OK(AuditRule(*rule, &violations));
  }
  AuditSelection(selection, &violations);
  return violations;
}

}  // namespace ariel
