#include "network/pnode.h"

#include <atomic>

#include "util/metrics.h"

namespace ariel {

namespace {
/// Process-wide match clock: every P-node insertion anywhere draws the next
/// tick, giving a total recency order across rules (and across engines,
/// which is harmless — only relative order within one engine matters).
std::atomic<uint64_t> g_match_clock{0};
}  // namespace

PNode::PNode(uint32_t relation_id, const std::string& rule_name,
             std::vector<PnodeVar> vars)
    : vars_(std::move(vars)) {
  Schema schema;
  for (const PnodeVar& v : vars_) {
    var_offset_.push_back(schema.num_attributes());
    schema.AddAttribute(Attribute{v.name + ".tid", DataType::kInt});
    for (const Attribute& attr : v.schema->attributes()) {
      schema.AddAttribute(Attribute{v.name + "." + attr.name, attr.type});
    }
    if (v.has_previous) {
      for (const Attribute& attr : v.schema->attributes()) {
        schema.AddAttribute(
            Attribute{v.name + ".previous." + attr.name, attr.type});
      }
    }
  }
  relation_ = std::make_unique<HeapRelation>(
      relation_id, "pnode$" + rule_name, std::move(schema));
  postings_.resize(vars_.size());
}

Status PNode::Insert(const Row& row) {
  if (row.num_vars() != vars_.size()) {
    return Status::Internal("P-node row arity mismatch");
  }
  Tuple out;
  for (size_t v = 0; v < vars_.size(); ++v) {
    if (!row.filled[v]) {
      return Status::Internal("P-node insert with unbound variable \"" +
                              vars_[v].name + "\"");
    }
    out.Append(Value::Int(EncodeTid(row.tids[v])));
    const size_t arity = vars_[v].schema->num_attributes();
    if (row.current[v].size() != arity) {
      return Status::Internal("P-node value arity mismatch for \"" +
                              vars_[v].name + "\"");
    }
    for (size_t i = 0; i < arity; ++i) out.Append(row.current[v].at(i));
    if (vars_[v].has_previous) {
      if (row.previous[v].size() != arity) {
        return Status::Internal("P-node previous arity mismatch for \"" +
                                vars_[v].name + "\"");
      }
      for (size_t i = 0; i < arity; ++i) out.Append(row.previous[v].at(i));
    }
  }
  ARIEL_ASSIGN_OR_RETURN(TupleId rid, relation_->Insert(std::move(out)));
  for (size_t v = 0; v < vars_.size(); ++v) {
    postings_[v][EncodeTid(row.tids[v])].push_back(rid);
  }
  last_insert_stamp_ = ++g_match_clock;
  Metrics().pnode_bindings_created.Increment();
  ++lifetime_insertions_;
  return Status::OK();
}

size_t PNode::RemoveByTid(size_t var_ordinal, TupleId tid) {
  const size_t tid_col = var_offset_[var_ordinal];
  const int64_t encoded = EncodeTid(tid);
  size_t removed = 0;
  auto it = postings_[var_ordinal].find(encoded);
  if (it != postings_[var_ordinal].end()) {
    std::vector<TupleId> rids = std::move(it->second);
    postings_[var_ordinal].erase(it);
    for (TupleId rid : rids) {
      // A posting can be stale (row already removed via another variable,
      // slot recycled by a later insert): act only when the slot still
      // holds a row binding (var, tid) — which is by definition a row
      // RemoveByTid must delete.
      const Tuple* t = relation_->Get(rid);
      if (t != nullptr && t->at(tid_col).int_value() == encoded) {
        ARIEL_IGNORE_STATUS(relation_->Delete(rid));  // id just checked
        ++removed;
      }
    }
  }
  Metrics().pnode_bindings_removed.Increment(removed);
  return removed;
}

void PNode::ClearPostings() {
  for (auto& map : postings_) map.clear();
}

void PNode::Clear() {
  for (TupleId row_id : relation_->AllTupleIds()) {
    ARIEL_IGNORE_STATUS(relation_->Delete(row_id));  // id just enumerated
  }
  ClearPostings();
}

std::unique_ptr<HeapRelation> PNode::MakeFiringBuffer() const {
  return std::make_unique<HeapRelation>(
      relation_->id(), relation_->name() + "$firing", relation_->schema());
}

void PNode::DrainInto(HeapRelation* dest) {
  for (TupleId row_id : dest->AllTupleIds()) {
    ARIEL_IGNORE_STATUS(dest->Delete(row_id));  // id just enumerated
  }
  size_t drained = 0;
  for (TupleId row_id : relation_->AllTupleIds()) {
    const Tuple* t = relation_->Get(row_id);
    if (t != nullptr) {
      ARIEL_IGNORE_STATUS(dest->Insert(*t).status());  // same schema
      ARIEL_IGNORE_STATUS(relation_->Delete(row_id));  // id just enumerated
      ++drained;
    }
  }
  ClearPostings();
  Metrics().pnode_bindings_consumed.Increment(drained);
}

std::unique_ptr<HeapRelation> PNode::DetachSnapshot() {
  auto snapshot = std::make_unique<HeapRelation>(
      relation_->id(), relation_->name() + "$firing", relation_->schema());
  size_t drained = 0;
  for (TupleId row_id : relation_->AllTupleIds()) {
    const Tuple* t = relation_->Get(row_id);
    if (t != nullptr) {
      ARIEL_IGNORE_STATUS(snapshot->Insert(*t).status());  // same schema
      ARIEL_IGNORE_STATUS(relation_->Delete(row_id));  // id just enumerated
      ++drained;
    }
  }
  ClearPostings();
  Metrics().pnode_bindings_consumed.Increment(drained);
  return snapshot;
}

PNode::State PNode::CaptureState() const {
  State state;
  for (TupleId row_id : relation_->AllTupleIds()) {
    const Tuple* t = relation_->Get(row_id);
    if (t != nullptr) state.rows.emplace_back(row_id, *t);
  }
  state.last_insert_stamp = last_insert_stamp_;
  state.lifetime_insertions = lifetime_insertions_;
  return state;
}

Status PNode::RestoreState(const State& state) {
  Clear();
  for (const auto& [rid, row] : state.rows) {
    // InsertAt keeps each row at its captured slot, so P-node row ids (and
    // hence scan order) survive the rollback exactly.
    ARIEL_RETURN_NOT_OK(relation_->InsertAt(rid, Tuple(row)));
    for (size_t v = 0; v < vars_.size(); ++v) {
      postings_[v][row.at(var_offset_[v]).int_value()].push_back(rid);
    }
  }
  last_insert_stamp_ = state.last_insert_stamp;
  lifetime_insertions_ = state.lifetime_insertions;
  return Status::OK();
}

Row PNode::ToRow(const Tuple& pnode_tuple) const {
  Row row(vars_.size());
  for (size_t v = 0; v < vars_.size(); ++v) {
    size_t offset = var_offset_[v];
    const size_t arity = vars_[v].schema->num_attributes();
    TupleId tid = DecodeTid(pnode_tuple.at(offset).int_value());
    Tuple value;
    for (size_t i = 0; i < arity; ++i) {
      value.Append(pnode_tuple.at(offset + 1 + i));
    }
    row.Set(v, std::move(value), tid);
    if (vars_[v].has_previous) {
      Tuple prev;
      for (size_t i = 0; i < arity; ++i) {
        prev.Append(pnode_tuple.at(offset + 1 + arity + i));
      }
      row.SetPrevious(v, std::move(prev));
    }
  }
  return row;
}

}  // namespace ariel
