#include "network/transition_manager.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/string_util.h"

namespace ariel {

void TransitionManager::BeginTransition() {
  in_transition_ = true;
  ++transition_seq_;
  Metrics().transitions.Increment();
  inserted_.clear();
  modified_.clear();
}

Status TransitionManager::EndTransition() {
  // Flush before OnTransitionEnd: deferred tokens may still have to reach
  // dynamic α-memories that the end-of-transition housekeeping flushes.
  Status status = FlushTokenBatch();
  in_transition_ = false;
  inserted_.clear();
  modified_.clear();
  network_->OnTransitionEnd();
  return status;
}

Status TransitionManager::FlushTokenBatch() {
  if (batch_.empty()) return Status::OK();
  std::vector<Token> draining;
  draining.swap(batch_);
  return network_->ProcessBatch(draining);
}

Status TransitionManager::MaybeFlushBeforeMutation(
    const HeapRelation& relation) {
  if (batch_.empty() || !network_->HasVirtualScanOn(relation.id())) {
    return Status::OK();
  }
  return FlushTokenBatch();
}

TokenEvent::AttrList TransitionManager::InternAttrs(
    const std::vector<std::string>& attrs) {
  std::vector<std::string> normalized;
  normalized.reserve(attrs.size());
  for (const std::string& attr : attrs) {
    std::string lower = ToLower(attr);
    if (std::find(normalized.begin(), normalized.end(), lower) ==
        normalized.end()) {
      normalized.push_back(std::move(lower));
    }
  }
  if (last_interned_ != nullptr && *last_interned_ == normalized) {
    return last_interned_;
  }
  last_interned_ = std::make_shared<const std::vector<std::string>>(
      std::move(normalized));
  return last_interned_;
}

TokenEvent::AttrList TransitionManager::MergedAttrs(
    const TokenEvent::AttrList& acc, const std::vector<std::string>& add) {
  std::vector<std::string> fresh;
  for (const std::string& attr : add) {
    std::string lower = ToLower(attr);
    if (std::find(acc->begin(), acc->end(), lower) == acc->end() &&
        std::find(fresh.begin(), fresh.end(), lower) == fresh.end()) {
      fresh.push_back(std::move(lower));
    }
  }
  if (fresh.empty()) return acc;
  auto merged = std::make_shared<std::vector<std::string>>(*acc);
  for (std::string& lower : fresh) merged->push_back(std::move(lower));
  return merged;
}

void TransitionManager::CountToken(const Token& token) {
  ++tokens_emitted_;
  EngineMetrics& m = Metrics();
  m.tokens_emitted.Increment();
  switch (token.kind) {
    case TokenKind::kPlus:
      m.tokens_plus.Increment();
      break;
    case TokenKind::kMinus:
      m.tokens_minus.Increment();
      break;
    case TokenKind::kDeltaPlus:
      m.tokens_delta_plus.Increment();
      break;
    case TokenKind::kDeltaMinus:
      m.tokens_delta_minus.Increment();
      break;
  }
}

Status TransitionManager::Emit(Token token) {
  CountToken(token);
  if (batch_tokens_ == 0) return network_->ProcessToken(token);
  batch_.push_back(std::move(token));
  if (batch_.size() >= batch_tokens_) return FlushTokenBatch();
  return Status::OK();
}

Status TransitionManager::EmitCompensating(Token token) {
  CountToken(token);
  return network_->ProcessToken(token);
}

Result<TupleId> TransitionManager::Insert(HeapRelation* relation,
                                          Tuple tuple) {
  const bool implicit = !in_transition_;
  if (implicit) BeginTransition();

  Status status = MaybeFlushBeforeMutation(*relation);
  TupleId tid;
  if (status.ok()) {
    Result<TupleId> inserted = relation->Insert(std::move(tuple));
    if (inserted.ok()) {
      tid = *inserted;
      if (undo_ != nullptr) undo_->AppendInsert(relation->id(), tid);
      inserted_.insert(tid);
      Token token;
      token.kind = TokenKind::kPlus;
      token.relation_id = relation->id();
      token.tid = tid;
      token.value = *relation->Get(tid);
      token.event = TokenEvent{EventKind::kAppend, {}};
      status = Emit(std::move(token));
    } else {
      status = inserted.status();
    }
  }

  if (implicit) {
    Status end = EndTransition();
    if (status.ok()) status = end;
  }
  if (!status.ok()) return status;
  return tid;
}

Status TransitionManager::Delete(HeapRelation* relation, TupleId tid) {
  const Tuple* current = relation->Get(tid);
  if (current == nullptr) {
    return Status::ExecutionError("delete of nonexistent tuple " +
                                  tid.ToString());
  }
  const bool implicit = !in_transition_;
  if (implicit) BeginTransition();
  // Pending tokens must see the relation as it stood when they were
  // emitted; flush before this delete becomes visible to virtual scans.
  Status status = MaybeFlushBeforeMutation(*relation);
  Tuple old_value = *current;
  // Logged before the token emissions: the storage delete runs last, so a
  // mid-propagation failure leaves partially-healed memories that rollback
  // must still compensate (CompensateDelete skips the storage step when the
  // tuple is still live).
  if (status.ok() && undo_ != nullptr && undo_->enabled()) {
    undo_->AppendDelete(relation->id(), tid, old_value);
  }

  if (status.ok() && inserted_.contains(tid)) {
    // Case 2 (im*d): retract the insertion; net effect nothing.
    Metrics().delta_case2_net_nothing.Increment();
    Token minus;
    minus.kind = TokenKind::kMinus;
    minus.relation_id = relation->id();
    minus.tid = tid;
    minus.value = std::move(old_value);
    minus.event = TokenEvent{EventKind::kAppend, {}};
    status = Emit(std::move(minus));
    inserted_.erase(tid);
  } else if (status.ok()) {
    auto mod = modified_.find(tid);
    if (mod != modified_.end()) {
      // Case 4 tail: retract the transition pair first.
      Metrics().delta_case4_modified_delete.Increment();
      Token delta_minus;
      delta_minus.kind = TokenKind::kDeltaMinus;
      delta_minus.relation_id = relation->id();
      delta_minus.tid = tid;
      delta_minus.value = old_value;  // the pair's new part
      delta_minus.previous = std::move(mod->second.original);
      delta_minus.event =
          TokenEvent::WithShared(EventKind::kReplace, mod->second.attrs);
      status = Emit(std::move(delta_minus));
      modified_.erase(mod);
    }
    if (status.ok()) {
      Token minus;
      minus.kind = TokenKind::kMinus;
      minus.relation_id = relation->id();
      minus.tid = tid;
      minus.value = std::move(old_value);
      minus.event = TokenEvent{EventKind::kDelete, {}};
      status = Emit(std::move(minus));
    }
  }

  if (status.ok()) status = relation->Delete(tid);
  if (implicit) {
    Status end = EndTransition();
    if (status.ok()) status = end;
  }
  return status;
}

Status TransitionManager::Update(HeapRelation* relation, TupleId tid,
                                 Tuple new_value,
                                 const std::vector<std::string>& updated_attrs) {
  const Tuple* current = relation->Get(tid);
  if (current == nullptr) {
    return Status::ExecutionError("update of nonexistent tuple " +
                                  tid.ToString());
  }
  const bool implicit = !in_transition_;
  if (implicit) BeginTransition();
  Status status = MaybeFlushBeforeMutation(*relation);
  Tuple old_value = *current;

  if (status.ok()) {
    status = relation->Update(tid, std::move(new_value), &updated_attrs);
  }
  if (status.ok() && undo_ != nullptr && undo_->enabled()) {
    undo_->AppendUpdate(relation->id(), tid, old_value, updated_attrs);
  }
  Tuple updated = status.ok() ? *relation->Get(tid) : Tuple();

  if (status.ok() && inserted_.contains(tid)) {
    // Case 1 (im*): the insertion is re-expressed with the new value.
    Metrics().delta_case1_reexpressed.Increment();
    Token minus;
    minus.kind = TokenKind::kMinus;
    minus.relation_id = relation->id();
    minus.tid = tid;
    minus.value = std::move(old_value);
    minus.event = TokenEvent{EventKind::kAppend, {}};
    status = Emit(std::move(minus));
    if (status.ok()) {
      Token plus;
      plus.kind = TokenKind::kPlus;
      plus.relation_id = relation->id();
      plus.tid = tid;
      plus.value = std::move(updated);
      plus.event = TokenEvent{EventKind::kAppend, {}};
      status = Emit(std::move(plus));
    }
  } else if (status.ok()) {
    auto mod = modified_.find(tid);
    if (mod == modified_.end()) {
      Metrics().delta_case3_first_modify.Increment();
      // Case 3 head (first modification of a pre-existing tuple): a
      // specifier-less − removes the old value from pattern memories
      // without waking on-delete rules, then a Δ+ introduces the pair.
      ModifiedEntry entry;
      entry.original = old_value;
      entry.attrs = InternAttrs(updated_attrs);

      Token minus;
      minus.kind = TokenKind::kMinus;
      minus.relation_id = relation->id();
      minus.tid = tid;
      minus.value = std::move(old_value);
      // no event specifier
      status = Emit(std::move(minus));
      if (status.ok()) {
        Token delta_plus;
        delta_plus.kind = TokenKind::kDeltaPlus;
        delta_plus.relation_id = relation->id();
        delta_plus.tid = tid;
        delta_plus.value = std::move(updated);
        delta_plus.previous = entry.original;
        delta_plus.event =
            TokenEvent::WithShared(EventKind::kReplace, entry.attrs);
        status = Emit(std::move(delta_plus));
      }
      modified_.emplace(tid, std::move(entry));
    } else {
      // Case 3 tail: replace the old pair with the updated one. The old
      // value of the pair stays the transition-start original.
      Metrics().delta_case3_later_modify.Increment();
      Token delta_minus;
      delta_minus.kind = TokenKind::kDeltaMinus;
      delta_minus.relation_id = relation->id();
      delta_minus.tid = tid;
      delta_minus.value = std::move(old_value);
      delta_minus.previous = mod->second.original;
      delta_minus.event =
          TokenEvent::WithShared(EventKind::kReplace, mod->second.attrs);
      status = Emit(std::move(delta_minus));
      if (status.ok()) {
        mod->second.attrs = MergedAttrs(mod->second.attrs, updated_attrs);
        Token delta_plus;
        delta_plus.kind = TokenKind::kDeltaPlus;
        delta_plus.relation_id = relation->id();
        delta_plus.tid = tid;
        delta_plus.value = std::move(updated);
        delta_plus.previous = mod->second.original;
        delta_plus.event =
            TokenEvent::WithShared(EventKind::kReplace, mod->second.attrs);
        status = Emit(std::move(delta_plus));
      }
    }
  }

  if (implicit) {
    Status end = EndTransition();
    if (status.ok()) status = end;
  }
  return status;
}

void TransitionManager::BeginCompensation() {
  network_->SetCompensationMode(true);
}

void TransitionManager::EndCompensation() {
  network_->SetCompensationMode(false);
  // Compensating tokens never enter dynamic (event/transition) memories —
  // they carry no specifier and are not Δ tokens — but run the
  // end-of-transition housekeeping anyway so the flushed-at-quiescence
  // invariant holds by construction.
  network_->OnTransitionEnd();
}

Status TransitionManager::CompensateInsert(HeapRelation* relation,
                                           TupleId tid) {
  const Tuple* current = relation->Get(tid);
  if (current == nullptr) return Status::OK();  // insert never reached storage
  Token minus;
  minus.kind = TokenKind::kMinus;
  minus.relation_id = relation->id();
  minus.tid = tid;
  minus.value = *current;
  // no event specifier
  ARIEL_RETURN_NOT_OK(EmitCompensating(std::move(minus)));
  return relation->Delete(tid);
}

Status TransitionManager::CompensateDelete(HeapRelation* relation, TupleId tid,
                                           const Tuple& before) {
  if (relation->Get(tid) == nullptr) {
    ARIEL_RETURN_NOT_OK(relation->InsertAt(tid, before));
  }
  // else: the delete failed between logging and the storage op — the tuple
  // is still live with its pre-delete value; just heal the memories.
  Token plus;
  plus.kind = TokenKind::kPlus;
  plus.relation_id = relation->id();
  plus.tid = tid;
  plus.value = *relation->Get(tid);
  // no event specifier
  return EmitCompensating(std::move(plus));
}

Status TransitionManager::CompensateUpdate(HeapRelation* relation, TupleId tid,
                                           const Tuple& before) {
  const Tuple* current = relation->Get(tid);
  if (current == nullptr) {
    return Status::Internal("update undo finds tuple " + tid.ToString() +
                            " missing from \"" + relation->name() + "\"");
  }
  Tuple after = *current;
  ARIEL_RETURN_NOT_OK(relation->Update(tid, before));
  Token minus;
  minus.kind = TokenKind::kMinus;
  minus.relation_id = relation->id();
  minus.tid = tid;
  minus.value = std::move(after);
  // no event specifier
  ARIEL_RETURN_NOT_OK(EmitCompensating(std::move(minus)));
  Token plus;
  plus.kind = TokenKind::kPlus;
  plus.relation_id = relation->id();
  plus.tid = tid;
  plus.value = *relation->Get(tid);
  // no event specifier
  return EmitCompensating(std::move(plus));
}

}  // namespace ariel
