#ifndef ARIEL_NETWORK_TRANSITION_MANAGER_H_
#define ARIEL_NETWORK_TRANSITION_MANAGER_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/gateway.h"
#include "network/discrimination_network.h"
#include "network/token.h"
#include "util/status.h"

namespace ariel {

/// The logical-event machinery of §2.2.2 and §4.3.1: a StorageGateway that
/// observes every tuple mutation, classifies it against the transition's
/// Δ-sets [I, M], emits the token sequence prescribed by cases 1-4, and
/// propagates the tokens through the discrimination network.
///
/// Δ-set contents per relation:
///   I — tuples inserted during the current transition,
///   M — pre-existing tuples modified during it, with their original value
///       and the accumulated set of updated attributes.
/// (No set is kept for deletions: a deleted tuple cannot be touched again.)
///
/// Token sequences (§4.3.1):
///   case 1 (im*):   insert → (+, append); each modify → (−, append),
///                   (+, append)
///   case 2 (im*d):  final delete → (−, append); net effect nothing
///   case 3 (m+):    first modify → (−, no specifier), (Δ+, replace);
///                   later modifies → (Δ−, replace), (Δ+, replace)
///   case 4 (m*d):   final delete → (Δ−, replace) if modified, then
///                   (−, delete)
///
/// A transition is opened/closed by the engine around each command or
/// do…end block. Gateway calls outside a transition get an implicit
/// single-operation transition (without the engine-level recognize-act
/// cycle, which only the engine runs).
class TransitionManager : public StorageGateway {
 public:
  explicit TransitionManager(DiscriminationNetwork* network)
      : network_(network) {}

  void BeginTransition();
  /// Clears the Δ-sets and flushes dynamic α-memories.
  [[nodiscard]] Status EndTransition();
  bool in_transition() const { return in_transition_; }

  // StorageGateway:
  [[nodiscard]] Result<TupleId> Insert(HeapRelation* relation, Tuple tuple) override;
  [[nodiscard]] Status Delete(HeapRelation* relation, TupleId tid) override;
  [[nodiscard]] Status Update(HeapRelation* relation, TupleId tid, Tuple new_value,
                const std::vector<std::string>& updated_attrs) override;

  uint64_t tokens_emitted() const { return tokens_emitted_; }

  /// Monotonic id of the current (or most recent) transition; used by the
  /// firing trace to tie a rule firing back to the transition that woke it.
  uint64_t transition_seq() const { return transition_seq_; }

 private:
  struct ModifiedEntry {
    Tuple original;                       // value at transition start
    std::vector<std::string> attrs;      // accumulated updated attributes
  };

  [[nodiscard]] Status Emit(Token token);

  DiscriminationNetwork* network_;
  bool in_transition_ = false;
  std::unordered_set<TupleId, TupleIdHash> inserted_;
  std::unordered_map<TupleId, ModifiedEntry, TupleIdHash> modified_;
  uint64_t tokens_emitted_ = 0;
  uint64_t transition_seq_ = 0;
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_TRANSITION_MANAGER_H_
