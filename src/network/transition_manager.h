#ifndef ARIEL_NETWORK_TRANSITION_MANAGER_H_
#define ARIEL_NETWORK_TRANSITION_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/gateway.h"
#include "network/discrimination_network.h"
#include "network/token.h"
#include "util/status.h"

namespace ariel {

/// The logical-event machinery of §2.2.2 and §4.3.1: a StorageGateway that
/// observes every tuple mutation, classifies it against the transition's
/// Δ-sets [I, M], emits the token sequence prescribed by cases 1-4, and
/// propagates the tokens through the discrimination network.
///
/// Δ-set contents per relation:
///   I — tuples inserted during the current transition,
///   M — pre-existing tuples modified during it, with their original value
///       and the accumulated set of updated attributes.
/// (No set is kept for deletions: a deleted tuple cannot be touched again.)
///
/// Token sequences (§4.3.1):
///   case 1 (im*):   insert → (+, append); each modify → (−, append),
///                   (+, append)
///   case 2 (im*d):  final delete → (−, append); net effect nothing
///   case 3 (m+):    first modify → (−, no specifier), (Δ+, replace);
///                   later modifies → (Δ−, replace), (Δ+, replace)
///   case 4 (m*d):   final delete → (Δ−, replace) if modified, then
///                   (−, delete)
///
/// A transition is opened/closed by the engine around each command or
/// do…end block. Gateway calls outside a transition get an implicit
/// single-operation transition (without the engine-level recognize-act
/// cycle, which only the engine runs).
///
/// Batched propagation (set_batch_tokens > 0): instead of walking each
/// token through the network at Emit time, tokens accumulate in emission
/// order and flush as one DiscriminationNetwork::ProcessBatch call — when
/// the batch fills, at end of transition, and before any mutation of a
/// relation some active rule virtually scans (a deferred token joining
/// through a virtual α-memory must see the base relation exactly as it
/// stood at the token's serial propagation point). Flush scope is therefore
/// always within one transition, and observable behaviour is identical to
/// per-token propagation.
class TransitionManager : public StorageGateway {
 public:
  explicit TransitionManager(DiscriminationNetwork* network)
      : network_(network) {}

  void BeginTransition();
  /// Flushes any pending token batch, clears the Δ-sets, and flushes
  /// dynamic α-memories.
  [[nodiscard]] Status EndTransition();
  bool in_transition() const { return in_transition_; }

  // StorageGateway:
  [[nodiscard]] Result<TupleId> Insert(HeapRelation* relation, Tuple tuple) override;
  [[nodiscard]] Status Delete(HeapRelation* relation, TupleId tid) override;
  [[nodiscard]] Status Update(HeapRelation* relation, TupleId tid, Tuple new_value,
                const std::vector<std::string>& updated_attrs) override;

  uint64_t tokens_emitted() const { return tokens_emitted_; }

  /// Monotonic id of the current (or most recent) transition; used by the
  /// firing trace to tie a rule firing back to the transition that woke it.
  uint64_t transition_seq() const { return transition_seq_; }

  /// Δ-set batching knob: accumulate up to `n` tokens before propagating
  /// them as one batch. 0 (default) propagates per token — the paper's
  /// behaviour, byte-for-byte.
  void set_batch_tokens(size_t n) { batch_tokens_ = n; }
  size_t batch_tokens() const { return batch_tokens_; }

  /// Tokens currently deferred (0 at every quiescence point; the auditor
  /// checks this).
  size_t pending_batch_tokens() const { return batch_.size(); }

  /// Propagates the pending batch now. Public for the engine's extra flush
  /// points; EndTransition always calls it.
  [[nodiscard]] Status FlushTokenBatch();

  /// Undo log receiving one record per applied mutation (null = no
  /// logging). Armed/disarmed by the owning TransactionContext.
  void set_undo_log(UndoLog* undo) { undo_ = undo; }

  // --- rollback compensation (driven by the engine's TransactionContext
  // hooks; never re-enters the gateway interface, so fault injection
  // wrappers cannot fail a rollback) ---

  /// Brackets an undo replay: every rule memory enters compensation mode —
  /// α-memories, TID→slot maps, join-index buckets, and Rete β-memories
  /// are maintained by the compensating tokens below, but P-node mutation
  /// is suppressed (conflict sets are history-dependent and are restored
  /// from engine snapshots instead; joining would also refire rules).
  void BeginCompensation();
  void EndCompensation();

  /// Reverse one logged mutation. Compensating tokens carry *no* event
  /// specifier (like the paper's case-3 simple − token), so they pass
  /// selection predicates and heal pattern memories without ever waking an
  /// on-event condition. Each is tolerant of the forward mutation having
  /// never reached storage (a mid-propagation failure logs before the
  /// storage op): the storage step is skipped, the network still heals.
  [[nodiscard]] Status CompensateInsert(HeapRelation* relation, TupleId tid);
  [[nodiscard]] Status CompensateDelete(HeapRelation* relation, TupleId tid,
                                        const Tuple& before);
  [[nodiscard]] Status CompensateUpdate(HeapRelation* relation, TupleId tid,
                                        const Tuple& before);

 private:
  struct ModifiedEntry {
    Tuple original;               // value at transition start
    TokenEvent::AttrList attrs;   // accumulated updated attributes, interned
  };

  [[nodiscard]] Status Emit(Token token);

  /// Emits a compensating token: straight through the network, bypassing
  /// the batch pipeline (the batch is empty during rollback — every exit
  /// path flushes — and compensation must not interleave with it).
  [[nodiscard]] Status EmitCompensating(Token token);

  void CountToken(const Token& token);

  /// Hazard flush: propagate pending tokens before `relation` changes if
  /// any active rule joins through a virtual α-memory over it.
  [[nodiscard]] Status MaybeFlushBeforeMutation(const HeapRelation& relation);

  /// Lowercases, dedups, and interns an updated-attribute list. A bulk
  /// replace passes the identical list for every tuple, so the one-entry
  /// cache turns per-tuple allocations into one per command.
  TokenEvent::AttrList InternAttrs(const std::vector<std::string>& attrs);

  /// Copy-on-write merge: returns `acc` itself when `add` brings nothing
  /// new, otherwise a fresh interned list. Never mutates `*acc` — tokens
  /// already emitted (possibly deferred in the batch) alias it.
  static TokenEvent::AttrList MergedAttrs(
      const TokenEvent::AttrList& acc, const std::vector<std::string>& add);

  DiscriminationNetwork* network_;
  UndoLog* undo_ = nullptr;
  bool in_transition_ = false;
  std::unordered_set<TupleId, TupleIdHash> inserted_;
  std::unordered_map<TupleId, ModifiedEntry, TupleIdHash> modified_;
  uint64_t tokens_emitted_ = 0;
  uint64_t transition_seq_ = 0;

  size_t batch_tokens_ = 0;
  std::vector<Token> batch_;
  TokenEvent::AttrList last_interned_;  // InternAttrs single-entry cache
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_TRANSITION_MANAGER_H_
