#ifndef ARIEL_NETWORK_DISCRIMINATION_NETWORK_H_
#define ARIEL_NETWORK_DISCRIMINATION_NETWORK_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "network/selection_network.h"
#include "network/rule_network.h"
#include "network/token.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ariel {

/// The complete A-TREAT discrimination network (§4): the selection-predicate
/// index on top, one TREAT join network per rule below. Owns neither — rule
/// networks belong to the rule manager; this class routes tokens.
class DiscriminationNetwork {
 public:
  DiscriminationNetwork() = default;

  [[nodiscard]] Status AddRule(RuleNetwork* rule);
  void RemoveRule(RuleNetwork* rule);

  /// Propagates one token: the selection network finds the α-memories it
  /// reaches; each arrival updates the memory, joins (for insertions), and
  /// maintains the P-node. ProcessedMemories grows across arrivals of the
  /// same token, implementing the paper's virtual-memory self-join protocol.
  [[nodiscard]] Status ProcessToken(const Token& token);

  /// Propagates a whole token batch (a TransitionManager flush):
  ///   stage 1 — the selection network classifies every token in one pass
  ///             (MatchBatch; one ISL descent per distinct constant
  ///             partition);
  ///   stage 2 — per-rule join/α-memory work, serial without a pool,
  ///             otherwise fanned out as one task per matched rule, each
  ///             staging its P-node deltas locally;
  ///   stage 3 — the staged deltas are applied on the calling thread in
  ///             (token_seq, rule registration) order.
  /// The result is byte-identical to calling ProcessToken per token: rules
  /// own disjoint memories, each rule sees its arrivals in token order, and
  /// the merge replays P-node mutations in exactly serial order.
  [[nodiscard]] Status ProcessBatch(const std::vector<Token>& tokens);

  /// Installs the worker pool for stage 2 (nullptr = serial matching).
  void ConfigureBatching(ThreadPool* pool) { pool_ = pool; }

  /// Columnar batch classification in the selection layer (mirrors
  /// DatabaseOptions.columnar_exec); affects MatchBatch and how
  /// subsequently added rules compile their selection predicates.
  void set_columnar_exec(bool on) { selection_.set_columnar_exec(on); }

  /// True when an active rule joins through a virtual α-memory over this
  /// relation: propagation then scans the base relation at match time, so
  /// deferred tokens must be flushed before the relation mutates again
  /// (TransitionManager's hazard flush).
  bool HasVirtualScanOn(uint32_t relation_id) const {
    auto it = virtual_scan_relations_.find(relation_id);
    return it != virtual_scan_relations_.end() && it->second > 0;
  }

  /// End-of-transition housekeeping: flushes dynamic α-memories (§4.3.2).
  void OnTransitionEnd();

  /// Toggles compensation mode on every registered rule network (see
  /// RuleNetwork::set_compensating): rollback replays compensating tokens
  /// that heal α-memories, join indexes, and Rete β-memories but leave
  /// P-nodes untouched — conflict sets are restored from snapshots.
  void SetCompensationMode(bool on) {
    for (RuleNetwork* rule : rules_) rule->set_compensating(on);
  }

  const SelectionNetwork& selection_network() const { return selection_; }

  uint64_t tokens_processed() const { return tokens_processed_; }
  uint64_t arrivals() const { return arrivals_; }

  /// Observation hook invoked for every token before propagation. Used by
  /// tests validating the §4.3.1 token-generation cases and by tracing.
  using TokenListener = std::function<void(const Token&)>;
  void set_token_listener(TokenListener listener) {
    token_listener_ = std::move(listener);
  }

 private:
  /// Bookkeeping shared by ProcessToken and ProcessBatch: arrival counters
  /// and the dirty-dynamic-rule set.
  void NoteArrival(RuleNetwork* rule);

  TokenListener token_listener_;
  SelectionNetwork selection_;
  ThreadPool* pool_ = nullptr;
  std::vector<RuleNetwork*> rules_;
  std::vector<RuleNetwork*> dirty_dynamic_rules_;
  /// relation id → number of active virtual α-memories scanning it.
  std::unordered_map<uint32_t, size_t> virtual_scan_relations_;
  uint64_t tokens_processed_ = 0;
  uint64_t arrivals_ = 0;
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_DISCRIMINATION_NETWORK_H_
