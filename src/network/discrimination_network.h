#ifndef ARIEL_NETWORK_DISCRIMINATION_NETWORK_H_
#define ARIEL_NETWORK_DISCRIMINATION_NETWORK_H_

#include <functional>
#include <vector>

#include "network/selection_network.h"
#include "network/rule_network.h"
#include "network/token.h"
#include "util/status.h"

namespace ariel {

/// The complete A-TREAT discrimination network (§4): the selection-predicate
/// index on top, one TREAT join network per rule below. Owns neither — rule
/// networks belong to the rule manager; this class routes tokens.
class DiscriminationNetwork {
 public:
  DiscriminationNetwork() = default;

  [[nodiscard]] Status AddRule(RuleNetwork* rule);
  void RemoveRule(RuleNetwork* rule);

  /// Propagates one token: the selection network finds the α-memories it
  /// reaches; each arrival updates the memory, joins (for insertions), and
  /// maintains the P-node. ProcessedMemories grows across arrivals of the
  /// same token, implementing the paper's virtual-memory self-join protocol.
  [[nodiscard]] Status ProcessToken(const Token& token);

  /// End-of-transition housekeeping: flushes dynamic α-memories (§4.3.2).
  void OnTransitionEnd();

  const SelectionNetwork& selection_network() const { return selection_; }

  uint64_t tokens_processed() const { return tokens_processed_; }
  uint64_t arrivals() const { return arrivals_; }

  /// Observation hook invoked for every token before propagation. Used by
  /// tests validating the §4.3.1 token-generation cases and by tracing.
  using TokenListener = std::function<void(const Token&)>;
  void set_token_listener(TokenListener listener) {
    token_listener_ = std::move(listener);
  }

 private:
  TokenListener token_listener_;
  SelectionNetwork selection_;
  std::vector<RuleNetwork*> rules_;
  std::vector<RuleNetwork*> dirty_dynamic_rules_;
  uint64_t tokens_processed_ = 0;
  uint64_t arrivals_ = 0;
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_DISCRIMINATION_NETWORK_H_
