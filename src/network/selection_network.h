#ifndef ARIEL_NETWORK_SELECTION_NETWORK_H_
#define ARIEL_NETWORK_SELECTION_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/vector_kernels.h"
#include "isl/interval_skip_list.h"
#include "network/rule_network.h"
#include "network/token.h"
#include "util/status.h"

namespace ariel {

/// A matched condition: which rule's which α-memory a token reaches.
struct ConditionMatch {
  RuleNetwork* rule;
  size_t alpha_ordinal;
};

/// The top layer of the discrimination network (§4.1): an index over the
/// single-relation selection predicates of all active rules.
///
/// For each relation, each registered condition contributes either an
/// interval (extracted from its `attr op constant` conjuncts, intersected
/// per attribute; the tightest attribute wins) into that attribute's
/// interval skip list, or — when no such conjunct exists, e.g. pure event
/// conditions or transition predicates like sal > 1.1 * previous sal — an
/// entry in the relation's residual list. A token is stabbed through each
/// attribute index and checked against the residual list; surviving
/// candidates are verified against the full predicate and the α-memory's
/// event/Δ admission filter. This keeps token testing sublinear in the
/// number of rules, which is what Figure 9-11's flat token-test curves
/// depend on.
class SelectionNetwork {
 public:
  SelectionNetwork() = default;

  /// Registers all α-memories of an initialized rule network.
  [[nodiscard]] Status AddRule(RuleNetwork* rule);

  /// Unregisters a rule's conditions.
  void RemoveRule(RuleNetwork* rule);

  /// Computes the α-memories this token reaches (admission filter plus full
  /// selection predicate), in registration order.
  [[nodiscard]] Result<std::vector<ConditionMatch>> Match(const Token& token) const;

  /// Batch classification (stage 1 of ProcessBatch): per-token results are
  /// identical to Match, but each attribute interval index descends once per
  /// distinct attribute value in the batch instead of once per token —
  /// duplicate constant-partitions reuse the cached stab result. Residual
  /// checks remain per token; predicate verification is column-at-a-time
  /// when the condition vector-compiles (one mask per condition per
  /// relation group, over a ColumnBatch of the group's token values),
  /// per-token otherwise. The vectorizable grammar is total and replicates
  /// row semantics exactly, so results — and the tested/matched counters —
  /// are identical either way.
  [[nodiscard]] Result<std::vector<std::vector<ConditionMatch>>> MatchBatch(
      const std::vector<Token>& tokens) const;

  /// Enables columnar batch verification (mirrors
  /// DatabaseOptions.columnar_exec). Off forces per-token verification.
  void set_columnar_exec(bool on) { columnar_exec_ = on; }
  bool columnar_exec() const { return columnar_exec_; }

  /// Diagnostics: how many conditions are interval-indexed vs. residual.
  size_t num_indexed() const { return num_indexed_; }
  size_t num_residual() const { return num_residual_; }

  /// Renders the selection-layer view of one rule's conditions: indexed
  /// (anchor attribute + interval) vs. residual, with lifetime
  /// tested/matched counters per condition. Backs `explain rule`.
  std::string DescribeRule(const RuleNetwork* rule) const;

  /// Observed admit fraction (matched/tested) of one rule condition's
  /// selection predicate, from the lifetime counters. Returns -1 when the
  /// condition is unregistered or has never been tested — the adaptive
  /// optimizer falls back to materialized-fraction estimates then.
  double ObservedSelectivity(const RuleNetwork* rule,
                             size_t alpha_ordinal) const;

  /// Audit support: cross-checks every attribute interval index against a
  /// brute-force scan (IntervalSkipList::AuditStabConsistency) and verifies
  /// the per-relation bookkeeping (each registered condition is either in
  /// exactly one index or on the residual list). Returns one description per
  /// inconsistency; empty means consistent.
  std::vector<std::string> AuditIndexes() const;

 private:
  struct NodeInfo {
    int64_t id;
    RuleNetwork* rule;
    size_t alpha_ordinal;
    bool indexed;
    size_t anchor_attr = 0;  // attribute position when indexed
    Interval interval;       // anchor interval when indexed
    /// Vector-compiled selection predicate, or null when the condition has
    /// no selection, references `previous`, or falls outside the
    /// vectorizable grammar. Used by MatchBatch to verify a whole relation
    /// group with one mask instead of one scratch-Row eval per token.
    VectorPredicatePtr vector_selection;
    // Lifetime observability counters; mutable because Match is const.
    mutable uint64_t tested = 0;   // tokens verified against this condition
    mutable uint64_t matched = 0;  // tokens admitted to the α-memory
  };

  struct PerRelation {
    /// attribute position -> interval index over conditions anchored there.
    std::map<size_t, std::unique_ptr<IntervalSkipList>> attr_indexes;
    std::vector<int64_t> residual;      // node ids verified on every token
    std::unordered_map<int64_t, NodeInfo> nodes;
  };

  /// Verifies one candidate condition against a token and appends a
  /// ConditionMatch on success. When `mask` is non-null the selection
  /// predicate's verdict is read from mask[mask_pos] (a column-kernel
  /// result over the batch's token values) instead of being re-evaluated
  /// on a scratch row; counters advance identically either way.
  [[nodiscard]] Status VerifyAndCollect(const Token& token, const NodeInfo& node,
                          const std::vector<uint8_t>* mask, size_t mask_pos,
                          std::vector<ConditionMatch>* out) const;

  std::unordered_map<uint32_t, PerRelation> relations_;
  int64_t next_node_id_ = 1;
  size_t num_indexed_ = 0;
  size_t num_residual_ = 0;
  bool columnar_exec_ = true;
};

/// Extracts the tightest index interval from a selection predicate: AND
/// conjuncts of the form `attr op constant` are intersected per attribute
/// and the best-anchored attribute (point > bounded > half-bounded) is
/// chosen. Returns false when no conjunct is indexable. Exposed for tests.
bool ExtractAnchorInterval(const Expr& selection, const Schema& schema,
                           size_t* attr_pos, Interval* interval);

}  // namespace ariel

#endif  // ARIEL_NETWORK_SELECTION_NETWORK_H_
