#ifndef ARIEL_NETWORK_RULE_NETWORK_H_
#define ARIEL_NETWORK_RULE_NETWORK_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "exec/expr.h"
#include "exec/optimizer.h"
#include "exec/vector_kernels.h"
#include "network/join_index.h"
#include "network/pnode.h"
#include "network/token.h"
#include "parser/ast.h"
#include "storage/column_batch.h"
#include "util/metrics.h"
#include "util/status.h"

namespace ariel {

/// The seven α-memory kinds of §4.3.3. A variable that is both event-based
/// and transition-based (the paper's finddemotions rule) is classified
/// kDynamicTrans and additionally carries the event filter.
enum class AlphaKind : uint8_t {
  kStored,        // materialized collection of matching tuples
  kVirtual,       // predicate only; joins scan the base relation (§4.2)
  kDynamicOn,     // event condition: flushed after each transition
  kDynamicTrans,  // transition condition: pairs, flushed after transition
  kSimple,        // 1-variable rule: matches go straight to the P-node
  kSimpleOn,
  kSimpleTrans,
};

const char* AlphaKindToString(AlphaKind kind);

/// Construction-time description of one α-memory node, produced by the rule
/// compiler from the rule's condition.
struct AlphaSpec {
  std::string var_name;
  const HeapRelation* relation = nullptr;
  /// The single-variable selection predicate over this variable (null means
  /// always true, the paper's new(v)).
  ExprPtr selection;
  AlphaKind kind = AlphaKind::kStored;
  /// Event filter for on-conditions.
  std::optional<EventSpec> on_event;
  /// True when the condition references `previous var`: the memory stores
  /// (new, old) pairs and only transition (Δ) tokens reach it.
  bool has_previous = false;
  /// Key metadata handed down by the rule compiler: attributes of this
  /// variable that appear as a bare column reference in an equality join
  /// conjunct whose other side does not touch the variable. The network
  /// builds hash join indexes (and B+tree probe paths) only on these.
  std::vector<std::string> equijoin_attrs;
};

/// One entry of a stored/dynamic α-memory.
struct AlphaEntry {
  TupleId tid;
  Tuple value;
  Tuple previous;  // transition memories only
};

/// A materialized or virtual α-memory inside one rule's network.
class AlphaMemory {
 public:
  AlphaMemory(AlphaSpec spec, size_t var_ordinal)
      : spec_(std::move(spec)), var_ordinal_(var_ordinal) {}

  const AlphaSpec& spec() const { return spec_; }
  size_t var_ordinal() const { return var_ordinal_; }
  AlphaKind kind() const { return spec_.kind; }

  bool stores_tuples() const {
    return spec_.kind == AlphaKind::kStored ||
           spec_.kind == AlphaKind::kDynamicOn ||
           spec_.kind == AlphaKind::kDynamicTrans;
  }
  bool is_virtual() const { return spec_.kind == AlphaKind::kVirtual; }
  bool is_simple() const {
    return spec_.kind == AlphaKind::kSimple ||
           spec_.kind == AlphaKind::kSimpleOn ||
           spec_.kind == AlphaKind::kSimpleTrans;
  }
  bool is_dynamic() const {
    return spec_.kind == AlphaKind::kDynamicOn ||
           spec_.kind == AlphaKind::kDynamicTrans;
  }
  bool is_transition() const { return spec_.has_previous; }

  /// Token admission: event-specifier filtering (§4.3.1) plus the Δ-only
  /// rule for transition memories. The selection predicate is checked
  /// separately by the selection network.
  bool AcceptsToken(const Token& token) const;

  const std::vector<AlphaEntry>& entries() const { return entries_; }
  /// Appends an entry, maintaining the TID→slot map and hash join indexes.
  void InsertEntry(AlphaEntry entry);
  /// Removes the entry with this tid (if present) in O(1) via the TID→slot
  /// map and swap-and-pop (entry order is not stable). Returns true if
  /// removed.
  bool RemoveEntry(TupleId tid);
  void Flush();

  /// Hash join indexes over the entries (configured by RuleNetwork::Init
  /// from the rule's equijoin conjuncts; empty for unkeyed memories).
  const JoinKeyIndex& join_index() const { return join_index_; }
  JoinKeyIndex* mutable_join_index() { return &join_index_; }

  /// Installs the hash key specs. `num_vars` is the rule's variable count
  /// (key expressions are compiled against the whole rule scope).
  void ConfigureJoinIndex(size_t num_vars, std::vector<JoinKeySpec> specs);

  /// Lazily-built column view over the current entries' (new) values, in
  /// entry order — mask position i corresponds to entries()[i]. Engine/
  /// match-task thread only; invalidated by InsertEntry, RemoveEntry, and
  /// Flush. Backs the columnar candidate prefilter in
  /// RuleNetwork::ForEachCandidate.
  std::shared_ptr<const ColumnBatch> ColumnView() const;

  /// Cross-checks the TID→slot map and the hash join indexes against the
  /// entry vector (auditor support). Returns problems (empty = consistent).
  std::vector<std::string> AuditIncrementalState() const;

  /// Coherence check for the cached column view: empty when no cache is
  /// materialized or it mirrors entries() cell-for-cell, else a description
  /// of the first disagreement (the auditor wraps it as
  /// kColumnCacheIncoherent).
  std::string AuditColumnCache() const;

  /// Test-only: materializes the column view and flips one validity bit,
  /// planting exactly the incoherence AuditColumnCache must catch.
  void CorruptColumnCacheForTesting();

  /// Estimated candidate count for join ordering.
  size_t EstimatedSize() const;

  /// Approximate bytes held by materialized entries (the storage the
  /// virtual-memory technique saves; §4.2).
  size_t FootprintBytes() const;

  /// Compiled selection predicate (set by RuleNetwork::Init).
  const CompiledExpr* compiled_selection() const {
    return compiled_selection_.get();
  }

 private:
  friend class RuleNetwork;

  AlphaSpec spec_;
  size_t var_ordinal_;
  CompiledExprPtr compiled_selection_;  // against the rule scope; may be null
  std::vector<AlphaEntry> entries_;
  /// Slot of each entry keyed by encoded tid, for O(1) RemoveEntry. Holds
  /// one slot per tid; a duplicate-tid insert (test-driven only) shadows
  /// the earlier slot, and removal falls back to a scan for shadowed
  /// entries.
  std::unordered_map<int64_t, uint32_t> slot_of_;
  JoinKeyIndex join_index_;
  size_t num_vars_ = 1;   // rule scope width, set by ConfigureJoinIndex
  Row scratch_row_;       // reused by InsertEntry for key evaluation
  /// Columnar view of entries_, rebuilt on demand after mutations.
  mutable std::shared_ptr<const ColumnBatch> column_cache_;
  uint64_t column_version_ = 0;  // bumped by every entry mutation
};

/// Which join-network algorithm a rule's condition is tested with.
///
/// kTreat is the paper's choice: no β-memories; each token re-joins against
/// the other α-memories and deletions are handled directly on the conflict
/// set (P-node). kRete materializes the classic left-deep chain of
/// β-memories holding partial instantiations — faster for tokens arriving
/// late in the chain, at the cost of β storage and β maintenance on
/// deletion. §8 names the combined/selectable network as future work.
/// Rules with event or transition conditions always run on TREAT (flushing
/// dynamic bindings out of β chains would reintroduce exactly the
/// maintenance cost TREAT avoids); the backend choice applies to pattern
/// rules.
enum class JoinBackend : uint8_t { kTreat, kRete };

const char* JoinBackendToString(JoinBackend backend);

/// The per-rule join network (§4.2): one α-memory per tuple variable, the
/// rule's join conjuncts, and the P-node collecting complete
/// instantiations. Runs the A-TREAT algorithm, or optionally Rete (see
/// JoinBackend).
class RuleNetwork {
 public:
  RuleNetwork(std::string rule_name, uint32_t pnode_relation_id,
              std::vector<AlphaSpec> alphas,
              std::vector<ExprPtr> join_conjuncts,
              JoinBackend backend = JoinBackend::kTreat);

  /// Compiles predicates and builds the P-node. Must be called once before
  /// any token processing.
  [[nodiscard]] Status Init();

  /// Enables/disables hash join indexing over stored α-memories and Rete
  /// β-levels. Must be set before Init; off forces the scan fallback
  /// everywhere (A/B comparison and the forced-scan test path).
  void set_join_hash_indexes(bool on) { join_hash_indexes_ = on; }
  bool join_hash_indexes() const { return join_hash_indexes_; }

  /// Enables the columnar candidate prefilter on stored-α scan fallbacks
  /// (mirrors DatabaseOptions.columnar_exec). Must be set before Init —
  /// probe derivation happens there.
  void set_columnar_exec(bool on) { columnar_exec_ = on; }
  bool columnar_exec() const { return columnar_exec_; }

  const std::string& rule_name() const { return rule_name_; }
  /// The P-node's synthetic relation id — reused across re-plans so a
  /// rebuilt network's conflict set stays addressable by the same id.
  uint32_t pnode_relation_id() const { return pnode_relation_id_; }
  const Scope& scope() const { return scope_; }
  size_t num_vars() const { return alphas_.size(); }
  AlphaMemory* alpha(size_t i) { return alphas_[i].get(); }
  const AlphaMemory* alpha(size_t i) const { return alphas_[i].get(); }
  PNode* pnode() { return pnode_.get(); }
  const PNode* pnode() const { return pnode_.get(); }

  /// The set of (virtual) memories the current token has already been
  /// conceptually placed in — the paper's ProcessedMemories structure.
  using ProcessedMemories = std::set<const AlphaMemory*>;

  /// Processes the arrival of `token` at α-memory `alpha_ordinal` (the
  /// selection network already verified the predicate): updates the memory
  /// and either extends joins into the P-node (insertions) or deletes the
  /// affected instantiations from the P-node (deletions).
  [[nodiscard]] Status Arrive(const Token& token, size_t alpha_ordinal,
                const ProcessedMemories& processed);

  // --- Staged P-node deltas (batch propagation) ---
  //
  // During the parallel match stage of DiscriminationNetwork::ProcessBatch
  // each rule runs as an independent task: α/β-memories are per-rule and
  // mutated directly, but P-node mutations are redirected into a local
  // buffer. The merge stage replays all buffers on one thread in serial
  // (token_seq, rule registration) order, so P-node contents — including
  // the recency stamps drawn from the process-wide match clock — are
  // byte-identical to per-token propagation.
  struct StagedDelta {
    uint32_t token_seq = 0;  // position of the triggering token in the batch
    bool is_insert = false;
    Row row;                 // instantiation payload (insert only)
    size_t var_ordinal = 0;  // retraction: variable whose binding died
    TupleId tid;             // retraction: the dead tuple
  };

  /// Redirects P-node mutations into `sink` until EndStagedDeltas.
  void BeginStagedDeltas(std::vector<StagedDelta>* sink) {
    staged_sink_ = sink;
    staged_token_seq_ = 0;
  }
  void EndStagedDeltas() { staged_sink_ = nullptr; }
  /// Batch position of the token about to Arrive (stamped onto deltas).
  void set_staged_token_seq(uint32_t seq) { staged_token_seq_ = seq; }
  /// True between Begin/EndStagedDeltas — must never be observed at a
  /// quiescence point (NetworkAuditor checks).
  bool staging_active() const { return staged_sink_ != nullptr; }
  /// Applies one staged delta to the P-node (merge stage, main thread).
  [[nodiscard]] Status ApplyStagedDelta(const StagedDelta& delta);

  /// Compensation mode (transaction rollback; toggled network-wide through
  /// DiscriminationNetwork::SetCompensationMode). Compensating tokens keep
  /// α-memories, TID→slot maps, hash join buckets, and Rete β-memories
  /// exact — idempotently, so partially-propagated forward tokens are
  /// healed too — but never touch the conflict set: P-nodes are
  /// history-dependent (drained instantiations must stay drained) and are
  /// restored from savepoint snapshots instead, which also keeps rollback
  /// joins from manufacturing spurious refires. Under TREAT the join walk
  /// is skipped entirely (it exists only to feed the P-node); under Rete
  /// ReteAssert still runs so β partials stay complete.
  void set_compensating(bool on) { compensating_ = on; }
  bool compensating() const { return compensating_; }

  /// Flushes dynamic memories (end of transition; §4.3.2).
  void FlushDynamicMemories();

  /// True when any α-memory is dynamic (set by Init): only such rules need
  /// end-of-transition flushing.
  bool has_dynamic_memories() const { return has_dynamic_; }

  /// Transition-scoped dirty flag, managed by DiscriminationNetwork so that
  /// end-of-transition flushing touches only the rules a token reached.
  bool dirty_dynamic() const { return dirty_dynamic_; }
  void set_dirty_dynamic(bool dirty) { dirty_dynamic_ = dirty; }

  /// Loads stored α-memories and the P-node from current database contents
  /// (rule activation; §6 "priming"). Dynamic memories stay empty; the
  /// P-node is loaded only when no dynamic memory exists (event/transition
  /// bindings cannot predate activation). Re-planning passes
  /// `load_pnode = false`: α/β state is rebuilt from the heap relations but
  /// the history-dependent conflict set is carried over from the old
  /// network via PNode::CaptureState/RestoreState instead of recomputed.
  [[nodiscard]] Status Prime(Optimizer* optimizer, bool load_pnode = true);

  // --- Live match statistics (adaptive optimizer inputs) ---

  /// Lifetime token-arrival counters, maintained by Arrive. Carried across
  /// re-plans by RuleManager::ReplanRule so the cost model keeps its
  /// history.
  struct MatchStats {
    uint64_t arrivals = 0;
    uint64_t plus_tokens = 0;
    uint64_t minus_tokens = 0;
    std::vector<uint64_t> var_arrivals;  // indexed by α ordinal
  };
  const MatchStats& match_stats() const { return match_stats_; }
  void set_match_stats(MatchStats stats) { match_stats_ = std::move(stats); }

  /// Installs an explicit TREAT probe order (a permutation of the variable
  /// ordinals); ExtendJoin binds the earliest unbound entry first. Empty
  /// restores the built-in connected-then-smallest heuristic. Ignored under
  /// Rete (β-chain order is fixed by the variable order).
  [[nodiscard]] Status set_planned_join_order(std::vector<size_t> order);
  const std::vector<size_t>& planned_join_order() const {
    return planned_join_order_;
  }

  /// The backend actually in use (kRete requests fall back to kTreat for
  /// rules with dynamic memories).
  JoinBackend backend() const { return backend_; }

  /// Total bytes materialized across α-memories (ablation metric).
  size_t AlphaFootprintBytes() const;

  /// Bytes held in β-memories (Rete backend only; 0 under TREAT).
  size_t BetaFootprintBytes() const;

  /// Partial-instantiation counts per β level (Rete; empty under TREAT).
  std::vector<size_t> BetaSizes() const;

  /// Rete β-memories (empty under TREAT); read-only introspection for the
  /// engine-state dump the rollback-equivalence tests compare.
  const std::vector<BetaMemory>& beta_memories() const { return beta_; }

  /// Renders the network structure in the style of the paper's Figures 3-4:
  /// per-variable selection predicates and α-memory kinds, the join
  /// conjuncts, and the current P-node cardinality.
  std::string ToString() const;

  /// The last token that arrived at this rule's network, recorded as a
  /// cheap POD in Arrive and rendered lazily by the firing trace (a rule
  /// fires orders of magnitude less often than tokens arrive).
  struct LastTrigger {
    bool valid = false;
    TokenKind kind = TokenKind::kPlus;
    uint32_t relation_id = 0;
    TupleId tid;
  };
  const LastTrigger& last_trigger() const { return last_trigger_; }

  /// Recomputes, from base relations only, the set of instantiations a
  /// fully-pattern rule should currently have — used by equivalence tests
  /// to validate incremental maintenance. Fails for rules with dynamic
  /// memories (their expected contents depend on transition history).
  [[nodiscard]] Result<std::vector<Row>> RecomputeInstantiations(Optimizer* optimizer) const;

  /// Cross-checks every hash join index (α and β) and retraction map
  /// against its backing entry storage. Returns human-readable problems
  /// (empty = consistent); used by NetworkAuditor under ARIEL_AUDIT.
  std::vector<std::string> AuditJoinIndexes() const;

 private:
  /// P-node write funnel: stages into the delta buffer when batching,
  /// otherwise mutates the P-node directly.
  [[nodiscard]] Status EmitInstantiation(const Row& row);
  void RetractInstantiations(size_t var_ordinal, TupleId tid);

  /// Recursively extends `row` (with `bound` variables already set) across
  /// the remaining α-memories, emitting completed instantiations into the
  /// P-node.
  [[nodiscard]] Status ExtendJoin(const Token& token, Row* row, std::vector<bool>* bound,
                    size_t num_bound, const ProcessedMemories& processed);

  /// Candidate enumeration for joining into variable `j`: a hash-bucket
  /// lookup when an equijoin key is fully bound, a B+tree probe or base
  /// scan for virtual memories, an entry scan otherwise. `fn` is a template
  /// parameter (not std::function) to keep type-erasure overhead off the
  /// hottest loop; all instantiations live in rule_network.cc.
  template <typename Fn>
  [[nodiscard]] Status ForEachCandidate(const Token& token, size_t j, const Row& row,
                          const std::vector<bool>& bound,
                          const ProcessedMemories& processed, Fn&& fn);

  /// Evaluates every join conjunct that becomes fully bound when `j` joins
  /// the bound set.
  [[nodiscard]] Result<bool> JoinConjunctsHold(size_t j, const std::vector<bool>& bound,
                                 const Row& row) const;

  /// Records index-probe opportunities arising from equijoin conjuncts
  /// into virtual α-memories (called once per conjunct by Init).
  [[nodiscard]] Status RecordIndexJoinPaths(const Expr& conjunct);

  /// Derives and installs the hash key specs for every stored α-memory
  /// from the rule's equijoin conjuncts, gated on the compiler's
  /// AlphaSpec::equijoin_attrs metadata (called once by Init).
  [[nodiscard]] Status ConfigureAlphaJoinIndexes();

  /// Key specs usable to probe β_level with a token bound at variable
  /// level + 1: equality conjuncts whose one side reads only variables in
  /// the prefix [0, level] and whose other side reads only the arriving
  /// variable.
  [[nodiscard]] Result<std::vector<JoinKeySpec>> DeriveBetaKeySpecs(size_t level) const;

  /// (Re)creates the β chain with configured key specs and postings
  /// (Init and PrimeBetas).
  [[nodiscard]] Status ConfigureBetas();

  // --- Rete backend ---

  /// Handles an asserting token arrival at α `i` under Rete: joins it
  /// leftward against β_{i-1} (or α_0), then cascades rightward.
  [[nodiscard]] Status ReteAssert(const Token& token, size_t alpha_ordinal,
                    const ProcessedMemories& processed);

  /// Extends a checked partial over variables [0, level] rightward,
  /// storing it in β_level and recursing until the P-node.
  [[nodiscard]] Status ReteExtend(size_t level, Row* row, const Token& token,
                    const ProcessedMemories& processed);

  /// Removes the partials binding (var, tid) from every β at or right of
  /// var's position.
  void ReteRetract(size_t var, TupleId tid);

  /// Evaluates the join conjuncts whose variables all lie in [0, level].
  /// `newly` is the variable just added (conjuncts not touching it were
  /// checked at an earlier level).
  [[nodiscard]] Result<bool> PrefixConjunctsHold(size_t level, size_t newly,
                                   const Row& row) const;

  /// Rebuilds the β chain from α contents / base relations (activation).
  [[nodiscard]] Status PrimeBetas(Optimizer* optimizer);

  std::string rule_name_;
  uint32_t pnode_relation_id_;
  std::vector<std::unique_ptr<AlphaMemory>> alphas_;
  std::vector<ExprPtr> join_exprs_;

  struct CompiledConjunct {
    CompiledExprPtr expr;
    std::vector<size_t> vars;
  };
  std::vector<CompiledConjunct> join_conjuncts_;

  /// An equijoin path usable to probe a virtual α-memory through a B+tree
  /// index instead of scanning its base relation (§4.2: "the base relation
  /// scan ... can be done with any scan algorithm"): when joining into
  /// variable `var` with all of `key_vars` already bound, evaluate
  /// `key_expr` and look up `attr_name` in the relation's index.
  struct IndexJoinPath {
    size_t var;
    std::string attr_name;
    CompiledExprPtr key_expr;
    std::vector<size_t> key_vars;
  };
  std::vector<IndexJoinPath> index_join_paths_;

  /// A join conjunct of the form `j.attr <op> key(other vars)` (normalized
  /// so the stored column is on the left) usable to prefilter a stored
  /// α-memory scan column-at-a-time: evaluate `key_expr` once per partial
  /// row, then AND one comparison kernel over the memory's column view
  /// instead of deep-copying and testing every candidate. `conjunct` is the
  /// ordinal into join_conjuncts_ — the prefilter may only consume a
  /// *prefix* of the conjuncts the caller would evaluate at this join step,
  /// which keeps error behaviour (and nothing else is observable: the
  /// kernels replicate Value::Compare exactly, and survivors are still
  /// re-verified by JoinConjunctsHold / PrefixConjunctsHold).
  struct BandedProbe {
    size_t conjunct = 0;
    size_t var = 0;               // the memory being scanned
    size_t col = 0;               // attribute position of the column side
    BinaryOp op = BinaryOp::kEq;  // normalized: column <op> key
    CompiledExprPtr key_expr;
    std::vector<size_t> key_vars;
  };
  std::vector<BandedProbe> banded_probes_;

  /// Derives BandedProbes from one join conjunct (called by Init, in
  /// conjunct order, when columnar execution is on).
  [[nodiscard]] Status RecordBandedProbes(size_t conjunct_idx,
                                          const Expr& conjunct);

  /// adjacency_[i][j] = true when some join conjunct touches both i and j.
  std::vector<std::vector<bool>> adjacency_;

  Scope scope_;
  std::unique_ptr<PNode> pnode_;
  JoinBackend backend_;
  /// Rete: beta_[L] holds partials over variables [0, L], for
  /// L in [1, n-2]; β_0 is the first α-memory itself and the final join
  /// result lands in the P-node. Each level carries keyed partial-match
  /// lookup and TID→slot postings (see BetaMemory).
  std::vector<BetaMemory> beta_;
  std::vector<StagedDelta>* staged_sink_ = nullptr;
  uint32_t staged_token_seq_ = 0;
  bool compensating_ = false;
  bool join_hash_indexes_ = true;
  bool columnar_exec_ = true;
  bool initialized_ = false;
  bool has_dynamic_ = false;
  bool dirty_dynamic_ = false;
  LastTrigger last_trigger_;
  MatchStats match_stats_;
  /// Explicit TREAT probe order (empty = heuristic); see
  /// set_planned_join_order.
  std::vector<size_t> planned_join_order_;
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_RULE_NETWORK_H_
