#include "network/token.h"

#include "util/string_util.h"

namespace ariel {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kDeltaPlus: return "delta+";
    case TokenKind::kDeltaMinus: return "delta-";
  }
  return "?";
}

std::string Token::ToString() const {
  std::string out = TokenKindToString(kind);
  out += " ";
  out += tid.ToString();
  out += " ";
  out += value.ToString();
  if (is_delta()) {
    out += " prev=";
    out += previous.ToString();
  }
  if (event.has_value()) {
    out += " on=";
    out += EventKindToString(event->kind);
    if (!event->updated_attrs.empty()) {
      out += "(" + Join(event->updated_attrs, ",") + ")";
    }
  }
  return out;
}

}  // namespace ariel
