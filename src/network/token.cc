#include "network/token.h"

#include "util/string_util.h"

namespace ariel {

TokenEvent::TokenEvent(EventKind kind, std::vector<std::string> attrs)
    : kind(kind) {
  if (!attrs.empty()) {
    attrs_ = std::make_shared<const std::vector<std::string>>(std::move(attrs));
  }
}

TokenEvent TokenEvent::WithShared(EventKind kind, AttrList attrs) {
  TokenEvent event;
  event.kind = kind;
  event.attrs_ = std::move(attrs);
  return event;
}

const std::vector<std::string>& TokenEvent::updated_attrs() const {
  static const std::vector<std::string> kEmpty;
  return attrs_ != nullptr ? *attrs_ : kEmpty;
}

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kDeltaPlus: return "delta+";
    case TokenKind::kDeltaMinus: return "delta-";
  }
  return "?";
}

std::string Token::ToString() const {
  std::string out = TokenKindToString(kind);
  out += " ";
  out += tid.ToString();
  out += " ";
  out += value.ToString();
  if (is_delta()) {
    out += " prev=";
    out += previous.ToString();
  }
  if (event.has_value()) {
    out += " on=";
    out += EventKindToString(event->kind);
    if (!event->updated_attrs().empty()) {
      out += "(" + Join(event->updated_attrs(), ",") + ")";
    }
  }
  return out;
}

}  // namespace ariel
