#include "network/join_index.h"

#include <algorithm>

namespace ariel {

namespace {
const std::vector<uint32_t> kNoSlots;
}  // namespace

void JoinKeyIndex::Configure(size_t num_vars, std::vector<JoinKeySpec> specs) {
  num_vars_ = num_vars;
  specs_.clear();
  for (JoinKeySpec& spec : specs) {
    SpecState state;
    state.spec = std::move(spec);
    specs_.push_back(std::move(state));
  }
}

void JoinKeyIndex::Disable(SpecState* state) {
  state->enabled = false;
  state->buckets.clear();
  state->slot_keys.clear();
}

void JoinKeyIndex::AppendSlot(size_t slot, const Row& row) {
  for (SpecState& state : specs_) {
    if (!state.enabled) continue;
    Result<Value> key = state.spec.entry_expr->Eval(row);
    if (!key.ok()) {
      // An unkeyable entry poisons the whole spec (a partial index would
      // under-report candidates): degrade this key to the scan path.
      Disable(&state);
      continue;
    }
    state.buckets[key.value()].push_back(static_cast<uint32_t>(slot));
    state.slot_keys.push_back(std::move(key).value());
  }
}

void JoinKeyIndex::RemoveSlot(size_t slot, size_t last_slot) {
  for (SpecState& state : specs_) {
    if (!state.enabled) continue;
    auto it = state.buckets.find(state.slot_keys[slot]);
    if (it != state.buckets.end()) {
      std::vector<uint32_t>& bucket = it->second;
      auto pos = std::find(bucket.begin(), bucket.end(),
                           static_cast<uint32_t>(slot));
      if (pos != bucket.end()) {
        *pos = bucket.back();
        bucket.pop_back();
      }
      if (bucket.empty()) state.buckets.erase(it);
    }
    if (slot != last_slot) {
      // The backing vector moved the entry at last_slot into slot.
      auto moved = state.buckets.find(state.slot_keys[last_slot]);
      if (moved != state.buckets.end()) {
        std::replace(moved->second.begin(), moved->second.end(),
                     static_cast<uint32_t>(last_slot),
                     static_cast<uint32_t>(slot));
      }
      state.slot_keys[slot] = std::move(state.slot_keys[last_slot]);
    }
    state.slot_keys.pop_back();
  }
}

void JoinKeyIndex::Clear() {
  for (SpecState& state : specs_) {
    state.buckets.clear();
    state.slot_keys.clear();
  }
}

int JoinKeyIndex::FindUsableSpec(const std::vector<bool>& bound) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    const SpecState& state = specs_[i];
    if (!state.enabled) continue;
    bool usable = true;
    for (size_t v : state.spec.probe_vars) {
      if (v >= bound.size() || !bound[v]) {
        usable = false;
        break;
      }
    }
    if (usable) return static_cast<int>(i);
  }
  return -1;
}

const std::vector<uint32_t>* JoinKeyIndex::Probe(size_t spec_idx,
                                                 const Row& row) const {
  const SpecState& state = specs_[spec_idx];
  if (!state.enabled) return nullptr;
  Result<Value> key = state.spec.probe_expr->Eval(row);
  if (!key.ok()) return nullptr;
  auto it = state.buckets.find(key.value());
  return it != state.buckets.end() ? &it->second : &kNoSlots;
}

void JoinKeyIndex::AuditBuckets(const SpecState& state, size_t num_slots,
                                std::vector<std::string>* problems) const {
  const std::string where = "hash index [" + state.spec.description + "]";
  // Bucket → slots direction: every member is in range and keyed to its
  // bucket (a planted/stale member fails here).
  for (const auto& [key, bucket] : state.buckets) {
    for (uint32_t s : bucket) {
      if (s >= num_slots) {
        problems->push_back(where + " bucket " + key.ToString() +
                            " references slot " + std::to_string(s) +
                            " beyond the memory's " +
                            std::to_string(num_slots) + " entries");
      } else if (!(state.slot_keys[s] == key)) {
        problems->push_back(where + " bucket " + key.ToString() +
                            " holds slot " + std::to_string(s) +
                            " whose entry keys to " +
                            state.slot_keys[s].ToString());
      }
    }
  }
  // Slots → bucket direction: every slot appears in its own bucket exactly
  // once (a double-planted slot fails here).
  for (size_t s = 0; s < num_slots; ++s) {
    size_t appearances = 0;
    auto it = state.buckets.find(state.slot_keys[s]);
    if (it != state.buckets.end()) {
      appearances = static_cast<size_t>(
          std::count(it->second.begin(), it->second.end(),
                     static_cast<uint32_t>(s)));
    }
    if (appearances != 1) {
      problems->push_back(where + " bucket " + state.slot_keys[s].ToString() +
                          " lists slot " + std::to_string(s) + " " +
                          std::to_string(appearances) +
                          " times (expected exactly once)");
    }
  }
}

void JoinKeyIndex::PlantBucketEntryForTesting(size_t spec_idx,
                                              const Value& key,
                                              uint32_t slot) {
  specs_[spec_idx].buckets[key].push_back(slot);
}

// ---------------------------------------------------------------------------
// BetaMemory
// ---------------------------------------------------------------------------

void BetaMemory::Configure(size_t num_vars, std::vector<JoinKeySpec> specs) {
  num_vars_ = num_vars;
  rows_.clear();
  postings_.assign(num_vars, {});
  index_.Configure(num_vars, std::move(specs));
}

void BetaMemory::Add(Row row) {
  const uint32_t slot = static_cast<uint32_t>(rows_.size());
  index_.AppendSlot(slot, row);
  for (size_t v = 0; v < num_vars_; ++v) {
    if (row.filled[v]) {
      postings_[v][EncodeTid(row.tids[v])].push_back(slot);
    }
  }
  rows_.push_back(std::move(row));
}

void BetaMemory::Clear() {
  rows_.clear();
  for (auto& map : postings_) map.clear();
  index_.Clear();
}

void BetaMemory::RemoveSlot(uint32_t slot) {
  const uint32_t last = static_cast<uint32_t>(rows_.size() - 1);
  index_.RemoveSlot(slot, last);
  // Detach the removed row from every posting list it appears in.
  const Row& dying = rows_[slot];
  for (size_t v = 0; v < num_vars_; ++v) {
    if (!dying.filled[v]) continue;
    auto it = postings_[v].find(EncodeTid(dying.tids[v]));
    if (it == postings_[v].end()) continue;
    std::vector<uint32_t>& list = it->second;
    auto pos = std::find(list.begin(), list.end(), slot);
    if (pos != list.end()) {
      *pos = list.back();
      list.pop_back();
    }
    if (list.empty()) postings_[v].erase(it);
  }
  if (slot != last) {
    rows_[slot] = std::move(rows_[last]);
    // Re-point the moved row's posting entries at its new slot.
    const Row& moved = rows_[slot];
    for (size_t v = 0; v < num_vars_; ++v) {
      if (!moved.filled[v]) continue;
      auto it = postings_[v].find(EncodeTid(moved.tids[v]));
      if (it != postings_[v].end()) {
        std::replace(it->second.begin(), it->second.end(), last, slot);
      }
    }
  }
  rows_.pop_back();
}

size_t BetaMemory::RemoveBindings(size_t var, TupleId tid) {
  if (var >= postings_.size()) return 0;
  auto it = postings_[var].find(EncodeTid(tid));
  if (it == postings_[var].end()) return 0;
  std::vector<uint32_t> slots = it->second;
  // Descending slot order keeps pending slot numbers valid: removing the
  // largest pending slot can only swap-move a slot above it.
  std::sort(slots.begin(), slots.end(), std::greater<uint32_t>());
  for (uint32_t slot : slots) {
    RemoveSlot(slot);
  }
  return slots.size();
}

std::vector<std::string> BetaMemory::AuditIndexes() const {
  std::vector<std::string> problems = index_.Audit(
      rows_.size(),
      [&](size_t slot, Row* scratch) { *scratch = rows_[slot]; });
  // Postings ↔ rows agreement, both directions.
  for (size_t v = 0; v < num_vars_; ++v) {
    for (const auto& [enc, list] : postings_[v]) {
      for (uint32_t s : list) {
        if (s >= rows_.size() || !rows_[s].filled[v] ||
            EncodeTid(rows_[s].tids[v]) != enc) {
          problems.push_back("postings for var " + std::to_string(v) +
                             " tid " + DecodeTid(enc).ToString() +
                             " reference slot " + std::to_string(s) +
                             " which does not bind that tuple");
        }
      }
    }
  }
  for (size_t s = 0; s < rows_.size(); ++s) {
    for (size_t v = 0; v < num_vars_; ++v) {
      if (!rows_[s].filled[v]) continue;
      auto it = postings_[v].find(EncodeTid(rows_[s].tids[v]));
      const bool listed =
          it != postings_[v].end() &&
          std::count(it->second.begin(), it->second.end(),
                     static_cast<uint32_t>(s)) == 1;
      if (!listed) {
        problems.push_back("slot " + std::to_string(s) +
                           " binds var " + std::to_string(v) + " tid " +
                           rows_[s].tids[v].ToString() +
                           " but the postings do not list it exactly once");
      }
    }
  }
  return problems;
}

}  // namespace ariel
