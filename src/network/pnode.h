#ifndef ARIEL_NETWORK_PNODE_H_
#define ARIEL_NETWORK_PNODE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "exec/row.h"
#include "storage/heap_relation.h"
#include "util/status.h"

namespace ariel {

/// Describes one tuple variable whose bindings a P-node stores.
struct PnodeVar {
  std::string name;
  const Schema* schema = nullptr;  // schema of the variable's relation
  bool has_previous = false;       // transition variable: store old values too
};

/// The P-node of §2.2.3/§5: a temporary relation holding the data matching a
/// rule's condition — the rule's conflict-set entry, in TREAT terms.
///
/// Layout per variable v (in rule variable order):
///   v.tid              encoded tuple identifier (int)
///   v.<attr>...        current attribute values
///   v.previous.<attr>  old attribute values (transition variables only)
///
/// The rule-action planner binds the tuple variable P to `relation()`, and
/// the primed commands decode `v.tid` to reach base tuples (§5.1).
class PNode {
 public:
  /// `relation_id` must be unique across the engine (it appears inside the
  /// TupleIds of P-node rows; the rule system allocates from a reserved
  /// range so P-node ids never collide with catalog relations).
  PNode(uint32_t relation_id, const std::string& rule_name,
        std::vector<PnodeVar> vars);

  const std::vector<PnodeVar>& vars() const { return vars_; }

  /// The backing relation, for PnodeScan binding.
  const HeapRelation& relation() const { return *relation_; }

  size_t size() const { return relation_->size(); }
  bool empty() const { return relation_->empty(); }

  /// Monotonic stamp of the most recent insertion (0 = never), drawn from a
  /// process-wide match clock. OPS5-style recency conflict resolution
  /// prefers the rule whose conflict-set entry is freshest.
  uint64_t last_insert_stamp() const { return last_insert_stamp_; }

  /// Lifetime count of instantiations ever inserted (observability; shown
  /// by `explain rule`).
  uint64_t lifetime_insertions() const { return lifetime_insertions_; }

  /// Materializes one instantiation. `row` is laid out against the rule's
  /// variable order; every slot must be filled.
  [[nodiscard]] Status Insert(const Row& row);

  /// Removes all instantiations whose binding for variable `var_ordinal`
  /// is the tuple `tid` — O(affected) via the per-variable postings rather
  /// than a relation scan. Returns the number removed.
  size_t RemoveByTid(size_t var_ordinal, TupleId tid);

  /// Consumes all instantiations (rule firing / deactivation).
  void Clear();

  /// Moves the current contents into a fresh relation and clears this
  /// P-node. Rule firing binds the action to the snapshot (the data matched
  /// "at rule fire time", §5), while instantiations produced by the action
  /// itself accumulate in the live P-node for later cycle iterations.
  std::unique_ptr<HeapRelation> DetachSnapshot();

  /// Creates an empty relation with this P-node's schema — the rule
  /// monitor's reusable firing buffer (a stable relation pointer lets
  /// cached action plans survive across firings).
  std::unique_ptr<HeapRelation> MakeFiringBuffer() const;

  /// Moves the current contents into `dest` (cleared first) and clears this
  /// P-node. `dest` must come from MakeFiringBuffer.
  void DrainInto(HeapRelation* dest);

  /// Rebuilds a Row (rule-variable layout) from one stored P-node tuple;
  /// used by tests and by the equivalence checker.
  Row ToRow(const Tuple& pnode_tuple) const;

  /// Point-in-time conflict-set snapshot for transaction savepoints. The
  /// conflict set is history-dependent (fired instantiations are drained,
  /// so it cannot be recomputed from base relations) — rollback restores it
  /// from these rather than replaying joins.
  struct State {
    std::vector<std::pair<TupleId, Tuple>> rows;  // row id → stored tuple
    uint64_t last_insert_stamp = 0;
    uint64_t lifetime_insertions = 0;
  };
  State CaptureState() const;

  /// Replaces the live contents with `state` (postings rebuilt from the
  /// stored tid columns). Bypasses the match clock and binding metrics —
  /// a restore is not new match activity.
  [[nodiscard]] Status RestoreState(const State& state);

 private:
  void ClearPostings();

  std::vector<PnodeVar> vars_;
  /// Per variable: column offset of its tid column (attr values follow).
  std::vector<size_t> var_offset_;
  /// postings_[var][EncodeTid(base tid)] = P-node row ids that bound it at
  /// insert time. Entries go stale when a row is removed through another
  /// variable's binding (or its slot is recycled); consumers verify the
  /// row's tid column before acting, so stale entries drop out lazily.
  std::vector<std::unordered_map<int64_t, std::vector<TupleId>>> postings_;
  std::unique_ptr<HeapRelation> relation_;
  uint64_t last_insert_stamp_ = 0;
  uint64_t lifetime_insertions_ = 0;
};

}  // namespace ariel

#endif  // ARIEL_NETWORK_PNODE_H_
