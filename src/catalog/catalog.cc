#include "catalog/catalog.h"

#include <algorithm>

#include "util/string_util.h"

namespace ariel {

Result<HeapRelation*> Catalog::CreateRelation(std::string_view name,
                                              Schema schema) {
  std::string key = ToLower(name);
  if (by_name_.contains(key)) {
    return Status::AlreadyExists("relation \"" + key + "\" already exists");
  }
  uint32_t id = next_id_++;
  auto relation = std::make_unique<HeapRelation>(id, key, std::move(schema));
  HeapRelation* ptr = relation.get();
  by_name_.emplace(key, std::move(relation));
  by_id_.emplace(id, ptr);
  ++version_;
  return ptr;
}

Status Catalog::DropRelation(std::string_view name) {
  std::string key = ToLower(name);
  auto it = by_name_.find(key);
  if (it == by_name_.end()) {
    return Status::NotFound("relation \"" + key + "\" does not exist");
  }
  by_id_.erase(it->second->id());
  by_name_.erase(it);
  ++version_;
  return Status::OK();
}

Result<std::unique_ptr<HeapRelation>> Catalog::Detach(std::string_view name) {
  std::string key = ToLower(name);
  auto it = by_name_.find(key);
  if (it == by_name_.end()) {
    return Status::NotFound("relation \"" + key + "\" does not exist");
  }
  std::unique_ptr<HeapRelation> relation = std::move(it->second);
  by_id_.erase(relation->id());
  by_name_.erase(it);
  ++version_;
  return relation;
}

Status Catalog::Adopt(std::unique_ptr<HeapRelation> relation) {
  const std::string& key = relation->name();
  if (by_name_.contains(key)) {
    return Status::AlreadyExists("relation \"" + key + "\" already exists");
  }
  if (by_id_.contains(relation->id())) {
    return Status::AlreadyExists("relation id " +
                                 std::to_string(relation->id()) +
                                 " already exists");
  }
  HeapRelation* ptr = relation.get();
  by_id_.emplace(ptr->id(), ptr);
  by_name_.emplace(key, std::move(relation));
  ++version_;
  return Status::OK();
}

HeapRelation* Catalog::GetRelation(std::string_view name) const {
  auto it = by_name_.find(ToLower(name));
  return it == by_name_.end() ? nullptr : it->second.get();
}

Result<HeapRelation*> Catalog::FindRelation(std::string_view name) const {
  HeapRelation* rel = GetRelation(name);
  if (rel == nullptr) {
    return Status::NotFound("relation \"" + ToLower(name) +
                            "\" does not exist");
  }
  return rel;
}

HeapRelation* Catalog::GetRelationById(uint32_t id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, rel] : by_name_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ariel
