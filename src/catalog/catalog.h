#ifndef ARIEL_CATALOG_CATALOG_H_
#define ARIEL_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "storage/heap_relation.h"
#include "util/status.h"

namespace ariel {

/// The system catalog: owns all relations and maps names and ids to them.
/// Relation ids start at 1 (0 is the invalid TupleId marker).
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a relation. Fails with AlreadyExists on duplicate name.
  Result<HeapRelation*> CreateRelation(std::string_view name, Schema schema);

  /// Destroys a relation and all its tuples and indexes.
  Status DropRelation(std::string_view name);

  /// Removes a relation from the catalog *without* destroying it, handing
  /// ownership to the caller. The undoable form of destroy: the detached
  /// relation (tuples, indexes, and id intact) parks in the undo log so an
  /// abort can Adopt it back with every captured TupleId still valid.
  Result<std::unique_ptr<HeapRelation>> Detach(std::string_view name);

  /// Re-registers a previously Detach()ed relation under its own name and
  /// id. Fails with AlreadyExists if either is now taken.
  Status Adopt(std::unique_ptr<HeapRelation> relation);

  /// Lookup by name (case-insensitive). Null if absent.
  HeapRelation* GetRelation(std::string_view name) const;

  /// Checked lookup by name.
  Result<HeapRelation*> FindRelation(std::string_view name) const;

  /// Lookup by id. Null if absent.
  HeapRelation* GetRelationById(uint32_t id) const;

  /// Names of all relations, sorted.
  std::vector<std::string> RelationNames() const;

  size_t num_relations() const { return by_name_.size(); }

  /// Schema-change epoch: bumped whenever the set of relations or indexes
  /// changes. Cached query plans (§5.3's stored-plan strategy) carry the
  /// version they were built against and are rebuilt on mismatch — the
  /// "dependencies between plans and database objects" the paper says
  /// stored-plan strategies must maintain.
  uint64_t version() const { return version_; }
  void BumpVersion() { ++version_; }

 private:
  uint32_t next_id_ = 1;
  uint64_t version_ = 1;
  std::unordered_map<std::string, std::unique_ptr<HeapRelation>> by_name_;
  std::unordered_map<uint32_t, HeapRelation*> by_id_;
};

}  // namespace ariel

#endif  // ARIEL_CATALOG_CATALOG_H_
