#ifndef ARIEL_CATALOG_SCHEMA_H_
#define ARIEL_CATALOG_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace ariel {

/// One column: a (name, type) pair. Names are stored lower-cased since
/// POSTQUEL identifiers are case-insensitive.
struct Attribute {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Attribute& other) const = default;
};

/// An ordered list of attributes describing the layout of tuples in a
/// relation (or of rows in a P-node / query result).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name` (case-insensitive), or -1.
  int IndexOf(std::string_view name) const;

  /// Checked lookup variant of IndexOf.
  Result<size_t> Find(std::string_view name) const;

  /// Appends an attribute (used when building P-node schemas).
  void AddAttribute(Attribute attr) { attributes_.push_back(std::move(attr)); }

  /// "(name=type, ...)" rendering for catalogs and error messages.
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace ariel

#endif  // ARIEL_CATALOG_SCHEMA_H_
