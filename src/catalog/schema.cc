#include "catalog/schema.h"

#include "util/string_util.h"

namespace ariel {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (auto& attr : attributes_) attr.name = ToLower(attr.name);
}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (EqualsIgnoreCase(attributes_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::Find(std::string_view name) const {
  int idx = IndexOf(name);
  if (idx < 0) {
    return Status::SemanticError("no attribute named \"" + std::string(name) +
                                 "\" in schema " + ToString());
  }
  return static_cast<size_t>(idx);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += "=";
    out += DataTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace ariel
