#include "server/session.h"

#include <utility>
#include <vector>

#include "server/protocol.h"
#include "util/metrics.h"

namespace ariel::server {

Session::Reply Session::HandleRequest(const std::string& text) {
  EngineMetrics& m = Metrics();
  Result<std::vector<CommandResult>> results = [&] {
    ScopedTimer timer(m.server_command_ns);
    return db_->ExecuteAll(text);
  }();
  // The engine has a single explicit-transaction slot and the server only
  // dispatches to this session when that slot is free or already ours, so
  // "open after the request" means ours.
  owns_txn_ = db_->txn().in_explicit();
  if (!results.ok()) {
    if (results.status().IsIncompleteInput()) {
      return Reply{kRespIncomplete, results.status().ToString() + "\n"};
    }
    return Reply{kRespError, "error: " + results.status().ToString() + "\n"};
  }
  m.server_commands.Increment(results->size());
  commands_ += results->size();
  if (results->empty()) return Reply{kRespOk, "ok\n"};
  std::string payload;
  for (const CommandResult& result : *results) {
    payload += RenderCommandResult(result);
  }
  return Reply{kRespOk, std::move(payload)};
}

void Session::OnDisconnect() {
  if (!owns_txn_ || !db_->txn().in_explicit()) {
    owns_txn_ = false;
    return;
  }
  // The peer vanished mid-transaction: abort, never commit. Routed through
  // Execute so audit builds get their post-abort network cross-check.
  Metrics().server_txn_aborts_on_disconnect.Increment();
  Result<CommandResult> aborted = db_->Execute("abort");
  if (!aborted.ok()) {
    // Nobody is left to report to; the undo layer has already restored
    // what it could, and the auditor will flag residue at quiescence.
    (void)aborted.status();
  }
  owns_txn_ = false;
}

}  // namespace ariel::server
