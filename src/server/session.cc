#include "server/session.h"

#include <utility>
#include <vector>

#include "parser/parser.h"
#include "server/protocol.h"
#include "util/metrics.h"

namespace ariel::server {

namespace {

/// Renders an execution outcome as the wire reply and counts the executed
/// commands — shared by the serialized path (HandleRequest) and the
/// detached read path (ExecuteDetached) so the two are byte-identical.
Session::Reply RenderReply(
    const Result<std::vector<CommandResult>>& results) {
  if (!results.ok()) {
    if (results.status().IsIncompleteInput()) {
      return Session::Reply{kRespIncomplete,
                            results.status().ToString() + "\n"};
    }
    return Session::Reply{kRespError,
                          "error: " + results.status().ToString() + "\n"};
  }
  Metrics().server_commands.Increment(results->size());
  if (results->empty()) return Session::Reply{kRespOk, "ok\n"};
  std::string payload;
  for (const CommandResult& result : *results) {
    payload += RenderCommandResult(result);
  }
  return Session::Reply{kRespOk, std::move(payload)};
}

}  // namespace

Session::Reply Session::HandleRequest(const std::string& text) {
  Result<std::vector<CommandResult>> results = [&] {
    ScopedTimer timer(Metrics().server_command_ns);
    return db_->ExecuteAll(text);
  }();
  // The engine has a single explicit-transaction slot and the server only
  // dispatches to this session when that slot is free or already ours, so
  // "open after the request" means ours.
  owns_txn_ = db_->txn().in_explicit();
  if (results.ok()) commands_ += results->size();
  return RenderReply(results);
}

bool Session::ClassifyRequest(const std::string& text) {
  Result<std::vector<CommandPtr>> commands = ParseScript(text);
  // Parse errors and incomplete input are not read-only: the serialized
  // path owns error/continuation reporting (and session line accumulation).
  if (!commands.ok() || commands->empty()) return false;
  for (const CommandPtr& command : *commands) {
    if (!IsReadOnlyCommand(*command)) return false;
  }
  return true;
}

Session::Reply Session::ExecuteDetached(const Database* db,
                                        const std::string& text) {
  Result<std::vector<CommandResult>> results =
      [&]() -> Result<std::vector<CommandResult>> {
    ScopedTimer timer(Metrics().server_command_ns);
    ARIEL_ASSIGN_OR_RETURN(std::vector<CommandPtr> commands,
                           ParseScript(text));
    // One snapshot for the whole request: every command in it reads the
    // same pinned state (the request was classified read-only, so nothing
    // in it can invalidate the snapshot either).
    const ReadSnapshot snapshot = db->AcquireReadSnapshot();
    std::vector<CommandResult> out;
    out.reserve(commands.size());
    for (const CommandPtr& command : commands) {
      ARIEL_ASSIGN_OR_RETURN(CommandResult result,
                             db->ExecuteReadOnly(*command, snapshot));
      out.push_back(std::move(result));
    }
    return out;
  }();
  return RenderReply(results);
}

void Session::OnDisconnect() {
  if (!owns_txn_ || !db_->txn().in_explicit()) {
    owns_txn_ = false;
    return;
  }
  // The peer vanished mid-transaction: abort, never commit. Routed through
  // Execute so audit builds get their post-abort network cross-check.
  Metrics().server_txn_aborts_on_disconnect.Increment();
  Result<CommandResult> aborted = db_->Execute("abort");
  if (!aborted.ok()) {
    // Nobody is left to report to; the undo layer has already restored
    // what it could, and the auditor will flag residue at quiescence.
    (void)aborted.status();
  }
  owns_txn_ = false;
}

}  // namespace ariel::server
