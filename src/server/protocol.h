#ifndef ARIEL_SERVER_PROTOCOL_H_
#define ARIEL_SERVER_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "exec/executor.h"
#include "util/status.h"

namespace ariel::server {

// ---------------------------------------------------------------------------
// Wire protocol (ISSUE 7 tentpole).
//
// Requests (client → server), one of two framings:
//   bare line     <command text>\n            — telnet-friendly one-liners;
//                                               any line not starting with '$'
//   length frame  $<n>\n<n payload bytes>\n   — exact byte count, so command
//                                               text may span lines (multi-
//                                               line define rule, do…end)
//
// Responses (server → client), always length-framed:
//   <kind><n>\n<n payload bytes>\n
// with kind one of:
//   '+'  command(s) executed; payload is the rendered results
//   '-'  error; payload is the rendered Status
//   '~'  incomplete input (StatusCode::kIncompleteInput): the request is a
//        valid prefix of a command — accumulate more lines and resend the
//        whole buffer. Nothing was executed.
//
// Both sides parse frames with the incremental decoders below; responses to
// pipelined requests are emitted strictly in request order.
// ---------------------------------------------------------------------------

inline constexpr char kRespOk = '+';
inline constexpr char kRespError = '-';
inline constexpr char kRespIncomplete = '~';

enum class DecodeStatus : uint8_t {
  kNeedMore,  // buffer holds no complete frame yet
  kFrame,     // one frame decoded and consumed from the buffer
  kMalformed, // framing is broken; the connection cannot be resynchronized
};

/// Decodes one request from the front of `buffer`, erasing consumed bytes.
/// On kFrame, `*text` holds the command text. On kMalformed, `*error`
/// explains what broke (bad length header, frame terminator missing, or a
/// frame/line exceeding `max_frame_bytes`).
DecodeStatus DecodeRequest(std::string* buffer, size_t max_frame_bytes,
                           std::string* text, std::string* error);

/// Decodes one response from the front of `buffer`, erasing consumed bytes.
/// On kFrame, `*kind` is one of kResp* and `*payload` holds the body.
DecodeStatus DecodeResponse(std::string* buffer, char* kind,
                            std::string* payload, std::string* error);

/// Encodes a request as a length frame ("$<n>\n<text>\n").
std::string EncodeRequest(std::string_view text);

/// Encodes a response frame ("<kind><n>\n<payload>\n").
std::string EncodeResponse(char kind, std::string_view payload);

/// Canonical human-readable rendering of one command result — the single
/// definition shared by the shell, the session layer, and the client's
/// --local mode, so "client against a server" and "same script in process"
/// produce byte-identical output.
std::string RenderCommandResult(const CommandResult& result);

}  // namespace ariel::server

#endif  // ARIEL_SERVER_PROTOCOL_H_
