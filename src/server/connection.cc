#include "server/connection.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/metrics.h"

namespace ariel::server {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::ExecutionError(std::string("fcntl(O_NONBLOCK): ") +
                                  strerror(errno));
  }
  return Status::OK();
}

Connection::~Connection() {
  // Session teardown (transaction abort) runs first — session_ is declared
  // after fd_ so its destructor fires before the socket state goes away.
  session_.reset();
  if (fd_ >= 0) ::close(fd_);
}

Result<size_t> Connection::ReadAvailable() {
  size_t total = 0;
  char chunk[16 * 1024];
  while (true) {
    ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      input.append(chunk, static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return Status::ExecutionError(std::string("read: ") + strerror(errno));
  }
  if (total > 0) {
    Metrics().server_bytes_read.Increment(total);
    Touch();
  }
  return total;
}

Result<bool> Connection::FlushOutput() {
  size_t written = 0;
  while (written < output.size()) {
    // MSG_NOSIGNAL: a peer that closed while replies were still queued
    // (e.g. a client that fired reads and vanished) must surface as EPIPE,
    // not a process-killing SIGPIPE.
    ssize_t n = ::send(fd_, output.data() + written,
                       output.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    output.erase(0, written);
    return Status::ExecutionError(std::string("write: ") + strerror(errno));
  }
  if (written > 0) {
    Metrics().server_bytes_written.Increment(written);
    output.erase(0, written);
    Touch();
  }
  return output.empty();
}

}  // namespace ariel::server
