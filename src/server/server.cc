#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "server/protocol.h"
#include "util/metrics.h"

namespace ariel::server {

namespace {

Status Errno(const char* what) {
  return Status::ExecutionError(std::string(what) + ": " + strerror(errno));
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') return fallback;
  return static_cast<size_t>(parsed);
}

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions options;
  options.port = static_cast<uint16_t>(
      EnvSize("ARIEL_PORT", options.port) & 0xffff);
  options.max_connections =
      EnvSize("ARIEL_SERVER_MAX_CONNECTIONS", options.max_connections);
  options.idle_timeout_ms = static_cast<int>(EnvSize(
      "ARIEL_SERVER_IDLE_TIMEOUT_MS",
      static_cast<size_t>(options.idle_timeout_ms)));
  options.max_frame_bytes =
      EnvSize("ARIEL_SERVER_MAX_FRAME_BYTES", options.max_frame_bytes);
  const char* backend = std::getenv("ARIEL_EVENT_BACKEND");
  if (backend != nullptr) options.event_backend = backend;
  return options;
}

ArielServer::ArielServer(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

ArielServer::~ArielServer() {
  // Join the reader pool before anything it can touch goes away: a running
  // task writes the wake pipe, and queued tasks hold request text.
  read_pool_.reset();
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

const char* ArielServer::backend_name() const {
  return loop_ != nullptr ? loop_->name() : "unstarted";
}

Status ArielServer::Start() {
  ARIEL_ASSIGN_OR_RETURN(loop_, MakeEventLoop(options_.event_backend));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (options_.host.empty() || options_.host == "*" ||
      options_.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
             1) {
    return Status::InvalidArgument("cannot parse listen host \"" +
                                   options_.host + "\" (want IPv4 dotted)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    return Errno("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);
  ARIEL_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) return Errno("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  ARIEL_RETURN_NOT_OK(SetNonBlocking(wake_read_fd_));
  ARIEL_RETURN_NOT_OK(SetNonBlocking(wake_write_fd_));

  ARIEL_RETURN_NOT_OK(loop_->Add(listen_fd_, /*read=*/true, /*write=*/false));
  ARIEL_RETURN_NOT_OK(
      loop_->Add(wake_read_fd_, /*read=*/true, /*write=*/false));

  // The engine's read_threads knob (ARIEL_READ_THREADS) turns on the
  // concurrent read path; 0 keeps the fully serialized loop.
  if (db_->options().read_threads > 0) {
    read_pool_ = std::make_unique<ThreadPool>(db_->options().read_threads);
  }
  return Status::OK();
}

void ArielServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    // One byte to pop the loop out of Wait; if the pipe is full the loop is
    // already awake. write(2) is async-signal-safe.
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, "s", 1);
  }
}

Status ArielServer::Run() {
  if (loop_ == nullptr) {
    return Status::InvalidArgument("Run() before Start()");
  }
  std::vector<IoEvent> events;
  while (true) {
    if (!draining_ && shutdown_requested_.load(std::memory_order_acquire)) {
      // Graceful shutdown: stop accepting and treat every connection as
      // read-closed — whatever was already received still executes, the
      // replies flush, open transactions abort at teardown.
      draining_ = true;
      drain_deadline_ =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      if (listen_fd_ >= 0) {
        ARIEL_IGNORE_STATUS(loop_->Remove(listen_fd_));
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& conn : connections_) {
        // Final read: requests the kernel already buffered count as
        // received and still execute; only bytes after this instant are
        // refused.
        ReadAndDecode(*conn);
        conn->read_closed = true;
      }
    }

    // Closing a connection can free the transaction gate and make other
    // sessions' deferred requests runnable, so keep pumping until quiescent
    // — Wait() would otherwise block on I/O that is never coming.
    bool work = true;
    while (work) {
      work = Pump();
      FlushAndUpdateInterest();
      work = CloseEligible() || work;
    }

    if (draining_ &&
        (connections_.empty() ||
         std::chrono::steady_clock::now() >= drain_deadline_)) {
      break;
    }

    ARIEL_RETURN_NOT_OK(loop_->Wait(ComputeTimeoutMs(), &events));
    for (const IoEvent& event : events) {
      if (event.fd == wake_read_fd_) {
        char sink[64];
        while (::read(wake_read_fd_, sink, sizeof sink) > 0) {
        }
        continue;
      }
      if (event.fd == listen_fd_) {
        if (event.readable) AcceptNew();
        continue;
      }
      for (auto& conn : connections_) {
        if (conn->fd() != event.fd) continue;
        if (event.readable || event.hangup) ReadAndDecode(*conn);
        // Writability is consumed by FlushAndUpdateInterest below; hangup
        // with nothing readable means the peer is gone.
        if (event.hangup && !event.readable) conn->read_closed = true;
        break;
      }
    }
  }
  // Teardown (forced after the grace period, or the drain completed):
  // finish every dispatched read first — their replies get a best-effort
  // flush, and no worker may still be running when the engine is handed
  // back to the caller. Session destructors then abort any transaction
  // still open.
  if (read_pool_ != nullptr) {
    read_pool_->WaitIdle();
    HarvestReadCompletions();
    FlushAndUpdateInterest();
  }
  while (!connections_.empty()) CloseConnection(connections_.size() - 1);
  return Status::OK();
}

int ArielServer::ComputeTimeoutMs() const {
  if (draining_) return 50;
  if (options_.idle_timeout_ms > 0) {
    return std::min(options_.idle_timeout_ms, 200);
  }
  return -1;
}

void ArielServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient error: the loop will retry
    }
    if (connections_.size() >= options_.max_connections) {
      Metrics().server_connections_rejected.Increment();
      const std::string reply = EncodeResponse(
          kRespError, "error: server at maximum connections (" +
                          std::to_string(options_.max_connections) + ")\n");
      // Best-effort courtesy reply on a fresh socket; the close is the
      // real answer. MSG_NOSIGNAL: the peer may already be gone.
      [[maybe_unused]] ssize_t n =
          ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    if (Status nb = SetNonBlocking(fd); !nb.ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(
        fd, id, std::make_unique<Session>(db_, id));
    if (Status added = loop_->Add(fd, /*read=*/true, /*write=*/false);
        !added.ok()) {
      continue;  // conn destructor closes the socket
    }
    connections_.push_back(std::move(conn));
    Metrics().server_connections_accepted.Increment();
    Metrics().server_active_connections.Set(
        static_cast<int64_t>(connections_.size()));
  }
}

void ArielServer::ReadAndDecode(Connection& conn) {
  if (conn.broken) return;
  if (Result<size_t> got = conn.ReadAvailable(); !got.ok()) {
    conn.broken = true;
    return;
  }
  while (conn.pending_error.empty() &&
         conn.requests.size() < options_.max_pipelined_requests) {
    std::string text;
    std::string error;
    DecodeStatus decoded =
        DecodeRequest(&conn.input, options_.max_frame_bytes, &text, &error);
    if (decoded == DecodeStatus::kNeedMore) break;
    if (decoded == DecodeStatus::kMalformed) {
      Metrics().server_frame_errors.Increment();
      conn.pending_error = "error: protocol: " + error + "\n";
      break;
    }
    // Classify once, at decode time, so the per-poll dispatch decision in
    // Pump never re-parses. Classification only matters when the reader
    // pool exists; skip the parse otherwise.
    const bool read_only =
        read_pool_ != nullptr && Session::ClassifyRequest(text);
    conn.requests.push_back(Connection::Request{std::move(text), read_only});
  }
}

Session* ArielServer::TransactionOwner() {
  for (auto& conn : connections_) {
    if (conn->session().owns_transaction()) return &conn->session();
  }
  return nullptr;
}

bool ArielServer::Pump() {
  HarvestReadCompletions();
  bool any = false;
  bool progress = true;
  while (progress) {
    progress = false;
    Session* owner = TransactionOwner();
    // Re-derive the barrier flag: the write that raised it may belong to a
    // connection that has since closed, and a stale flag would pin every
    // read onto the engine thread forever.
    if (write_waiting_) {
      bool write_pending = false;
      for (auto& conn : connections_) {
        if (conn->broken || conn->requests.empty()) continue;
        if (!conn->requests.front().read_only) {
          write_pending = true;
          break;
        }
      }
      if (!write_pending) write_waiting_ = false;
    }
    for (auto& conn : connections_) {
      if (conn->broken) continue;
      if (conn->output.size() >= options_.max_output_buffer_bytes) {
        if (!conn->stalled) {
          conn->stalled = true;
          Metrics().server_backpressure_stalls.Increment();
        }
        continue;
      }
      conn->stalled = false;
      if (conn->requests.empty()) {
        if (!conn->pending_error.empty() && conn->reply_slots.empty()) {
          // All earlier replies are flushed or queued in order; emit the
          // framing error and stop reading this connection for good.
          conn->output += EncodeResponse(kRespError, conn->pending_error);
          conn->pending_error.clear();
          conn->read_closed = true;
          progress = true;
        }
        continue;
      }
      // While a session holds the explicit transaction, only it may reach
      // the engine; everyone else's pipeline stays queued (executing them
      // would silently enroll their commands in the owner's transaction).
      // That gate covers dispatched reads too: the executor reads live
      // engine state, so a concurrent read during someone's open
      // transaction could observe its uncommitted writes.
      if (owner != nullptr && owner != &conn->session()) continue;
      Connection::Request& front = conn->requests.front();
      if (read_pool_ != nullptr && front.read_only && owner == nullptr &&
          !draining_ && !write_waiting_) {
        std::string text = std::move(front.text);
        conn->requests.pop_front();
        DispatchRead(*conn, std::move(text));
        conn->Touch();
        progress = true;
        continue;
      }
      // Engine-thread execution. A mutating command must first wait for
      // every dispatched read to finish (the write barrier); a read-only
      // request executing here is just another reader and proceeds.
      if (!front.read_only) {
        if (ReadsInFlight() > 0) {
          if (!write_waiting_) {
            write_waiting_ = true;
            Metrics().server_read_barrier_waits.Increment();
          }
          continue;
        }
        write_waiting_ = false;
      }
      const bool was_read_only = front.read_only;
      std::string request = std::move(front.text);
      conn->requests.pop_front();
      if (read_pool_ != nullptr && was_read_only) {
        Metrics().server_read_serialized.Increment();
      }
      Session::Reply reply = conn->session().HandleRequest(request);
      conn->reply_slots.push_back(Connection::ReplySlot{
          conn->next_reply_seq++, true,
          EncodeResponse(reply.kind, reply.payload)});
      EmitReadyReplies(*conn);
      conn->Touch();
      owner = TransactionOwner();
      progress = true;
    }
    any = any || progress;
  }
  return any;
}

void ArielServer::DispatchRead(Connection& conn, std::string text) {
  const uint64_t seq = conn.next_reply_seq++;
  conn.reply_slots.push_back(Connection::ReplySlot{seq, false, {}});
  {
    std::lock_guard<std::mutex> lock(read_mu_);
    ++reads_in_flight_;
  }
  Metrics().server_read_dispatches.Increment();
  Metrics().server_reads_in_flight.Add(1);
  // The task must outlive the connection: capture the database pointer,
  // the connection id, and the request text — nothing that teardown frees.
  const Database* db = db_;
  const uint64_t conn_id = conn.id();
  const int wake_fd = wake_write_fd_;
  read_pool_->Submit([this, db, conn_id, seq, wake_fd,
                      request = std::move(text)] {
    Session::Reply reply = Session::ExecuteDetached(db, request);
    {
      std::lock_guard<std::mutex> lock(read_mu_);
      read_completions_.push_back(
          ReadCompletion{conn_id, seq, reply.kind, std::move(reply.payload)});
      --reads_in_flight_;
    }
    // Pop the event loop out of Wait so the completion is harvested
    // promptly; if the pipe is full the loop is already awake.
    [[maybe_unused]] ssize_t n = ::write(wake_fd, "r", 1);
  });
}

void ArielServer::HarvestReadCompletions() {
  if (read_pool_ == nullptr) return;
  std::vector<ReadCompletion> done;
  {
    std::lock_guard<std::mutex> lock(read_mu_);
    done.swap(read_completions_);
  }
  for (ReadCompletion& completion : done) {
    Metrics().server_reads_in_flight.Add(-1);
    Connection* conn = FindConnection(completion.conn_id);
    if (conn == nullptr) {
      // The client vanished while its read ran. The read never touched the
      // connection, so nothing dangles; the reply just has nowhere to go.
      Metrics().server_read_orphaned.Increment();
      continue;
    }
    for (Connection::ReplySlot& slot : conn->reply_slots) {
      if (slot.seq != completion.slot_seq) continue;
      slot.ready = true;
      slot.encoded = EncodeResponse(completion.kind, completion.payload);
      break;
    }
    conn->Touch();
    EmitReadyReplies(*conn);
  }
}

void ArielServer::EmitReadyReplies(Connection& conn) {
  while (!conn.reply_slots.empty() && conn.reply_slots.front().ready) {
    conn.output += conn.reply_slots.front().encoded;
    conn.reply_slots.pop_front();
  }
}

size_t ArielServer::ReadsInFlight() {
  if (read_pool_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(read_mu_);
  return reads_in_flight_;
}

Connection* ArielServer::FindConnection(uint64_t id) {
  for (auto& conn : connections_) {
    if (conn->id() == id) return conn.get();
  }
  return nullptr;
}

void ArielServer::FlushAndUpdateInterest() {
  for (auto& conn : connections_) {
    if (conn->broken) continue;
    if (!conn->output.empty()) {
      if (Result<bool> drained = conn->FlushOutput(); !drained.ok()) {
        conn->broken = true;
        continue;
      }
    }
    const bool want_read =
        !conn->read_closed && !conn->stalled &&
        conn->requests.size() < options_.max_pipelined_requests &&
        conn->pending_error.empty();
    const bool want_write = !conn->output.empty();
    if (want_read != conn->loop_read || want_write != conn->loop_write) {
      if (loop_->Modify(conn->fd(), want_read, want_write).ok()) {
        conn->loop_read = want_read;
        conn->loop_write = want_write;
      }
    }
  }
}

bool ArielServer::CloseEligible() {
  bool closed_any = false;
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = connections_.size(); i-- > 0;) {
    Connection& conn = *connections_[i];
    if (conn.broken) {
      CloseConnection(i);
      closed_any = true;
      continue;
    }
    if (conn.read_closed && conn.requests.empty() &&
        conn.reply_slots.empty() && conn.pending_error.empty() &&
        conn.output.empty()) {
      CloseConnection(i);
      closed_any = true;
      continue;
    }
    if (options_.idle_timeout_ms > 0 && !draining_ &&
        now - conn.last_activity() >
            std::chrono::milliseconds(options_.idle_timeout_ms)) {
      Metrics().server_idle_disconnects.Increment();
      conn.output +=
          EncodeResponse(kRespError, "error: idle timeout, disconnecting\n");
      ARIEL_IGNORE_STATUS(conn.FlushOutput().status());
      CloseConnection(i);
      closed_any = true;
    }
  }
  return closed_any;
}

void ArielServer::CloseConnection(size_t index) {
  Connection& conn = *connections_[index];
  ARIEL_IGNORE_STATUS(loop_->Remove(conn.fd()));
  // The Connection destructor tears down the Session first, aborting any
  // transaction the peer left open.
  connections_.erase(connections_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  Metrics().server_connections_closed.Increment();
  Metrics().server_active_connections.Set(
      static_cast<int64_t>(connections_.size()));
}

}  // namespace ariel::server
