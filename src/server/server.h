#ifndef ARIEL_SERVER_SERVER_H_
#define ARIEL_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ariel/database.h"
#include "server/connection.h"
#include "server/event_loop.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ariel::server {

/// Knobs for ariel-server. Defaults suit interactive/loopback use; FromEnv
/// applies the documented environment overrides on top of them.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (tests, benches) — read the real
  /// one back from ArielServer::port(). Env: ARIEL_PORT.
  uint16_t port = 7087;
  /// Accepted connections beyond this are answered with an error response
  /// and closed. Env: ARIEL_SERVER_MAX_CONNECTIONS.
  size_t max_connections = 64;
  /// Connections silent for this long are torn down (their open transaction
  /// aborts, like any disconnect). 0 = never. Env:
  /// ARIEL_SERVER_IDLE_TIMEOUT_MS.
  int idle_timeout_ms = 0;
  /// Upper bound on one request frame (and on one bare line). Oversized or
  /// malformed frames get an error response, then the connection closes.
  /// Env: ARIEL_SERVER_MAX_FRAME_BYTES.
  size_t max_frame_bytes = 1 << 20;
  /// Per-connection unflushed-response cap: past it the connection stops
  /// executing requests and stops reading until the peer drains responses
  /// (backpressure), so one slow reader cannot balloon server memory.
  size_t max_output_buffer_bytes = 256 * 1024;
  /// Decoded-but-unexecuted requests held per connection before reading
  /// pauses; bounds pipelined-queue memory while a transaction owner has
  /// the engine gated.
  size_t max_pipelined_requests = 1024;
  /// "" = epoll where available (Linux), else poll; or force "epoll" /
  /// "poll". Env: ARIEL_EVENT_BACKEND.
  std::string event_backend;

  /// Defaults with environment overrides applied (malformed values are
  /// ignored, keeping the default).
  static ServerOptions FromEnv();
};

/// The networked front end (ISSUE 7 tentpole): a readiness-loop TCP server
/// over one Database. Connection I/O, framing, pipelining, backpressure,
/// and timeouts live here; command execution and transaction bracketing
/// live in Session (the only caller of Database::Execute*).
///
/// Threading: Start() and Run() must be called from the same thread; Run
/// blocks until RequestShutdown (which is safe to call from any thread or
/// a signal handler) and drains in-flight commands before returning. The
/// Database must not be touched by other threads while Run is executing.
///
/// Concurrent read path (ISSUE 10 tentpole): with
/// DatabaseOptions.read_threads > 0 (ARIEL_READ_THREADS), requests that
/// classify as read-only are dispatched to a reader thread pool and execute
/// against a pinned snapshot via Database::ExecuteReadOnly, concurrently
/// with each other. Mutating commands stay serialized on the event-loop
/// thread behind a write barrier: they wait until every dispatched read has
/// finished, and while one waits no new read is dispatched
/// (anti-starvation). Per-connection response order is preserved through
/// seq-numbered reply slots; sessions inside an explicit transaction (and
/// everyone else while one is open) stay fully serialized. With
/// read_threads == 0 everything runs exactly as before — the engine routes
/// read-only commands through the same const path either way, so results
/// are byte-identical at every thread count.
class ArielServer {
 public:
  ArielServer(Database* db, ServerOptions options);
  ~ArielServer();

  ArielServer(const ArielServer&) = delete;
  ArielServer& operator=(const ArielServer&) = delete;

  /// Creates the event loop, binds and listens. After Start, port() is the
  /// actual bound port.
  [[nodiscard]] Status Start();

  /// Serves until RequestShutdown. Graceful teardown: stop accepting,
  /// execute every request already received, flush replies (bounded grace
  /// period), abort any transaction left open, close everything.
  [[nodiscard]] Status Run();

  /// Signals Run to shut down. Async-signal-safe: an atomic flag plus one
  /// write to the wake pipe.
  void RequestShutdown();

  uint16_t port() const { return bound_port_; }
  const char* backend_name() const;
  size_t active_connections() const { return connections_.size(); }

 private:
  /// One finished pool read, queued by the worker for the event-loop thread
  /// to marry back to its connection's reply slot. Identified by connection
  /// id, not pointer: the connection may have been torn down while the read
  /// ran (the completion is then counted as orphaned and dropped).
  struct ReadCompletion {
    uint64_t conn_id = 0;
    uint64_t slot_seq = 0;
    char kind = 0;
    std::string payload;
  };

  void AcceptNew();
  /// Reads a connection's socket and decodes complete frames into its
  /// request queue (classifying each read-only or not); framing errors park
  /// a pending_error reply.
  void ReadAndDecode(Connection& conn);
  /// Executes runnable requests across connections, round-robin, until no
  /// progress: skips connections stalled on backpressure and, while one
  /// session holds the explicit transaction, everyone but the owner.
  /// Read-only requests are dispatched to the reader pool when eligible;
  /// mutating ones wait behind the write barrier.
  /// Returns true if any request executed (or framing error was emitted).
  bool Pump();
  Session* TransactionOwner();
  /// Hands one read-only request to the reader pool: claims the next reply
  /// slot, bumps reads-in-flight, and submits a task that executes via
  /// Session::ExecuteDetached. The task captures only the database pointer
  /// and the request text — never the connection or session, which may be
  /// gone by completion time.
  void DispatchRead(Connection& conn, std::string text);
  /// Marries finished pool reads back to their reply slots (dropping
  /// orphans whose connection closed) and emits newly-ready replies.
  void HarvestReadCompletions();
  /// Moves ready front slots into the connection's output buffer.
  static void EmitReadyReplies(Connection& conn);
  size_t ReadsInFlight();
  Connection* FindConnection(uint64_t id);
  /// Flushes outputs and reconciles each connection's event-loop interest
  /// bits with its current state.
  void FlushAndUpdateInterest();
  /// Tears down broken, fully-drained, and idle-timed-out connections.
  /// Returns true if any connection closed (teardown can free the
  /// transaction gate, so the caller must pump again).
  bool CloseEligible();
  void CloseConnection(size_t index);
  int ComputeTimeoutMs() const;

  Database* db_;
  ServerOptions options_;
  std::unique_ptr<EventLoop> loop_;
  std::vector<std::unique_ptr<Connection>> connections_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t bound_port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  /// Reader pool (null when read_threads == 0: fully serialized). Created
  /// in Start(); Run() drains every dispatched read before tearing down
  /// connections, and the destructor resets the pool before closing the
  /// wake pipe its workers write to.
  std::unique_ptr<ThreadPool> read_pool_;
  std::mutex read_mu_;
  std::vector<ReadCompletion> read_completions_;  // guarded by read_mu_
  size_t reads_in_flight_ = 0;                    // guarded by read_mu_
  /// Anti-starvation: a mutating command is blocked on the write barrier,
  /// so no new read may be dispatched until it runs. Event-loop thread
  /// only; cleared whenever the barrier is observed open.
  bool write_waiting_ = false;
};

}  // namespace ariel::server

#endif  // ARIEL_SERVER_SERVER_H_
