#ifndef ARIEL_SERVER_CLIENT_H_
#define ARIEL_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ariel::server {

/// Blocking client side of the wire protocol; used by examples/ariel_client,
/// the loopback tests, and bench/server_throughput. Requests go out
/// length-framed; Send/ReadResponse are split so callers can pipeline.
class ClientConnection {
 public:
  struct Response {
    char kind = 0;        // kRespOk / kRespError / kRespIncomplete
    std::string payload;  // rendered results or rendered Status
  };

  /// Connects over IPv4 ("localhost" is accepted as 127.0.0.1).
  [[nodiscard]] static Result<ClientConnection> Connect(
      const std::string& host, uint16_t port);

  ClientConnection(ClientConnection&& other) noexcept;
  ClientConnection& operator=(ClientConnection&& other) noexcept;
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  ~ClientConnection();

  /// Sends one length-framed request without waiting for the reply.
  [[nodiscard]] Status Send(std::string_view command_text);

  /// Blocks for the next response frame. Responses arrive in request order.
  [[nodiscard]] Result<Response> ReadResponse();

  /// Send + ReadResponse.
  [[nodiscard]] Result<Response> RoundTrip(std::string_view command_text);

  /// Writes arbitrary bytes — the loopback tests use this to hand the
  /// server malformed and oversized frames.
  [[nodiscard]] Status SendRaw(std::string_view bytes);

  /// Half-closes the write side so the server sees EOF while responses can
  /// still be read (pipelined-drain testing).
  void CloseWriteHalf();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit ClientConnection(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace ariel::server

#endif  // ARIEL_SERVER_CLIENT_H_
