#ifndef ARIEL_SERVER_SESSION_H_
#define ARIEL_SERVER_SESSION_H_

#include <cstdint>
#include <string>

#include "ariel/database.h"

namespace ariel::server {

/// One client's execution context: the only layer of src/server/ that may
/// call into Database::Execute* (enforced by ariel_lint's server-session
/// rule). It brackets the engine's single explicit-transaction slot:
///
///   - a session that executes `begin` becomes the transaction owner; the
///     server defers every other session's commands until the owner commits,
///     aborts, or disconnects (interleaving them would silently enroll them
///     in — and roll them back with — a stranger's transaction);
///   - a session that disconnects (or is torn down at shutdown) with its
///     transaction still open aborts it, never commits (ISSUE 7 satellite:
///     a dropped connection must not publish half a transaction).
///
/// Sessions are driven exclusively from the server's event-loop thread, so
/// commands across all connections execute serialized through the engine —
/// the match-stage thread pool already parallelizes within a command.
class Session {
 public:
  struct Reply {
    char kind;            // kRespOk / kRespError / kRespIncomplete
    std::string payload;  // rendered results or rendered Status
  };

  Session(Database* db, uint64_t id) : db_(db), id_(id) {}
  ~Session() { OnDisconnect(); }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes one request (a script of one or more commands)
  /// and renders the wire reply. Incomplete input executes nothing and
  /// returns kRespIncomplete so the client keeps accumulating lines.
  Reply HandleRequest(const std::string& text);

  /// True iff `text` parses completely and every command in it is read-only
  /// (IsReadOnlyCommand) — i.e. the whole request is eligible for the
  /// server's concurrent read path. Parse errors and incomplete input
  /// classify as not-read-only so the serialized path reports them.
  /// Static and side-effect-free: the server calls it at decode time.
  static bool ClassifyRequest(const std::string& text);

  /// Executes a read-only request against a pinned snapshot and renders the
  /// reply. Static and const over the database: touches no session state
  /// and no engine state, so the server's reader pool can run it on any
  /// worker thread, concurrently with other reads, and the reply stays
  /// valid even if this client's connection has since been torn down.
  /// Byte-identical to HandleRequest for the same (read-only) request.
  static Reply ExecuteDetached(const Database* db, const std::string& text);

  /// True while this session's `begin` holds the engine's explicit
  /// transaction open — the server's serialization gate.
  bool owns_transaction() const { return owns_txn_; }

  /// Aborts the session's open transaction, if any. Idempotent; called on
  /// peer disconnect, idle-timeout teardown, and server shutdown.
  void OnDisconnect();

  uint64_t id() const { return id_; }
  uint64_t commands_executed() const { return commands_; }

 private:
  Database* db_;
  uint64_t id_;
  bool owns_txn_ = false;
  uint64_t commands_ = 0;
};

}  // namespace ariel::server

#endif  // ARIEL_SERVER_SESSION_H_
