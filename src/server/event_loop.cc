#include "server/event_loop.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#define ARIEL_HAVE_EPOLL 1
#endif

namespace ariel::server {

namespace {

Status Errno(const char* what) {
  return Status::ExecutionError(std::string(what) + ": " + strerror(errno));
}

/// Portable fallback: rebuilds a pollfd array per Wait. O(tracked fds) per
/// call, which is fine at this server's connection counts; epoll exists for
/// the day it is not.
class PollLoop final : public EventLoop {
 public:
  Status Add(int fd, bool read, bool write) override {
    for (const auto& [tracked, mask] : fds_) {
      if (tracked == fd) {
        return Status::InvalidArgument("fd already registered");
      }
    }
    fds_.emplace_back(fd, MakeMask(read, write));
    return Status::OK();
  }

  Status Modify(int fd, bool read, bool write) override {
    for (auto& [tracked, mask] : fds_) {
      if (tracked == fd) {
        mask = MakeMask(read, write);
        return Status::OK();
      }
    }
    return Status::NotFound("fd not registered");
  }

  Status Remove(int fd) override {
    auto it = std::find_if(fds_.begin(), fds_.end(),
                           [fd](const auto& e) { return e.first == fd; });
    if (it == fds_.end()) return Status::NotFound("fd not registered");
    fds_.erase(it);
    return Status::OK();
  }

  Status Wait(int timeout_ms, std::vector<IoEvent>* events) override {
    events->clear();
    pollfds_.clear();
    for (const auto& [fd, mask] : fds_) {
      pollfds_.push_back(pollfd{fd, mask, 0});
    }
    int n = ::poll(pollfds_.data(),
                   static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("poll");
    }
    for (const pollfd& p : pollfds_) {
      if (p.revents == 0) continue;
      IoEvent event;
      event.fd = p.fd;
      event.readable = (p.revents & POLLIN) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      event.hangup = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }

  const char* name() const override { return "poll"; }

 private:
  static short MakeMask(bool read, bool write) {  // NOLINT(runtime/int)
    short mask = 0;                               // NOLINT(runtime/int)
    if (read) mask |= POLLIN;
    if (write) mask |= POLLOUT;
    return mask;
  }

  std::vector<std::pair<int, short>> fds_;  // NOLINT(runtime/int)
  std::vector<pollfd> pollfds_;
};

#ifdef ARIEL_HAVE_EPOLL

class EpollLoop final : public EventLoop {
 public:
  ~EpollLoop() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  Status Init() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) return Errno("epoll_create1");
    return Status::OK();
  }

  Status Add(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_ADD, fd, read, write, "epoll_ctl(ADD)");
  }

  Status Modify(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_MOD, fd, read, write, "epoll_ctl(MOD)");
  }

  Status Remove(int fd) override {
    epoll_event unused{};
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &unused) < 0) {
      return Errno("epoll_ctl(DEL)");
    }
    return Status::OK();
  }

  Status Wait(int timeout_ms, std::vector<IoEvent>* events) override {
    events->clear();
    epoll_event ready[64];
    int n = ::epoll_wait(epfd_, ready, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      IoEvent event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.hangup = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return Status::OK();
  }

  const char* name() const override { return "epoll"; }

 private:
  Status Ctl(int op, int fd, bool read, bool write, const char* what) {
    epoll_event event{};
    if (read) event.events |= EPOLLIN;
    if (write) event.events |= EPOLLOUT;
    event.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &event) < 0) return Errno(what);
    return Status::OK();
  }

  int epfd_ = -1;
};

#endif  // ARIEL_HAVE_EPOLL

}  // namespace

Result<std::unique_ptr<EventLoop>> MakeEventLoop(std::string_view backend) {
  if (backend == "poll") {
    return std::unique_ptr<EventLoop>(std::make_unique<PollLoop>());
  }
#ifdef ARIEL_HAVE_EPOLL
  if (backend.empty() || backend == "epoll") {
    auto loop = std::make_unique<EpollLoop>();
    ARIEL_RETURN_NOT_OK(loop->Init());
    return std::unique_ptr<EventLoop>(std::move(loop));
  }
#else
  if (backend.empty()) {
    return std::unique_ptr<EventLoop>(std::make_unique<PollLoop>());
  }
  if (backend == "epoll") {
    return Status::NotSupported("epoll is not available on this platform");
  }
#endif
  return Status::InvalidArgument("unknown event backend \"" +
                                 std::string(backend) +
                                 "\" (want \"epoll\" or \"poll\")");
}

}  // namespace ariel::server
