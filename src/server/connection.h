#ifndef ARIEL_SERVER_CONNECTION_H_
#define ARIEL_SERVER_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "server/session.h"
#include "util/status.h"

namespace ariel::server {

/// Marks an fd non-blocking (used for accepted sockets and the listener).
[[nodiscard]] Status SetNonBlocking(int fd);

/// Per-connection state machine owned by the server's event loop: raw-byte
/// buffers on both sides, the decoded-but-unexecuted request queue
/// (pipelining), and the session that executes them.
///
/// Backpressure (ISSUE 7 tentpole): `output` is bounded by the server's
/// max_output_buffer_bytes. While the peer is slower than the engine the
/// buffer fills; past the cap the server parks the connection — no further
/// requests are executed and the socket's read interest is dropped — until
/// a flush drains it below the cap. Pipelined requests already decoded stay
/// queued, so responses are never reordered or lost.
class Connection {
 public:
  Connection(int fd, uint64_t id, std::unique_ptr<Session> session)
      : fd_(fd),
        id_(id),
        session_(std::move(session)),
        last_activity_(std::chrono::steady_clock::now()) {}
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Drains the socket into `input`. Sets read_closed on EOF and returns
  /// the byte count read; a hard socket error returns ExecutionError.
  [[nodiscard]] Result<size_t> ReadAvailable();

  /// Writes as much of `output` as the socket accepts; returns true when
  /// the buffer fully drained. A hard socket error returns ExecutionError
  /// (EPIPE/ECONNRESET: the peer is gone).
  [[nodiscard]] Result<bool> FlushOutput();

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }
  Session& session() { return *session_; }

  void Touch() { last_activity_ = std::chrono::steady_clock::now(); }
  std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }

  /// One decoded request, classified at decode time so the dispatch
  /// decision (reader pool vs. engine thread) never re-parses per poll.
  struct Request {
    std::string text;
    /// Whole script parses and is read-only (Session::ClassifyRequest).
    bool read_only = false;
  };

  /// One in-order reply slot. Every executed request claims the next slot;
  /// engine-thread execution fills it immediately, a dispatched read fills
  /// it when its completion is harvested. Slots drain into `output`
  /// strictly front-to-back, so responses keep request order even when
  /// pool reads finish out of order.
  struct ReplySlot {
    uint64_t seq = 0;
    bool ready = false;
    std::string encoded;
  };

  std::string input;                 // raw bytes, not yet framed
  std::deque<Request> requests;      // decoded, not yet executed
  std::deque<ReplySlot> reply_slots;  // executed/dispatched, not yet emitted
  uint64_t next_reply_seq = 1;
  std::string output;                // encoded replies, not yet flushed

  /// EOF seen: execute what was pipelined, flush, then close.
  bool read_closed = false;
  /// Fatal framing or socket error: flush the error reply if possible and
  /// close; pending requests are dropped.
  bool broken = false;
  /// In backpressure stall (output over the cap); tracked so the stall
  /// metric counts episodes, not polls.
  bool stalled = false;
  /// Rendered framing-error reply, emitted after the replies to every
  /// request decoded before the framing broke, then the connection closes.
  std::string pending_error;
  /// Interest bits currently registered with the event loop (owned by the
  /// server; cached to skip redundant Modify calls).
  bool loop_read = true;
  bool loop_write = false;

 private:
  int fd_;
  uint64_t id_;
  std::unique_ptr<Session> session_;
  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace ariel::server

#endif  // ARIEL_SERVER_CONNECTION_H_
