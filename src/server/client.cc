#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "server/protocol.h"

namespace ariel::server {

namespace {

Status Errno(const char* what) {
  return Status::ExecutionError(std::string(what) + ": " + strerror(errno));
}

}  // namespace

Result<ClientConnection> ClientConnection::Connect(const std::string& host,
                                                   uint16_t port) {
  const std::string resolved = (host.empty() || host == "localhost")
                                   ? std::string("127.0.0.1")
                                   : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host \"" + host +
                                   "\" (want IPv4 dotted or localhost)");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status failed = Errno("connect");
    ::close(fd);
    return failed;
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return ClientConnection(fd);
}

ClientConnection::ClientConnection(ClientConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), inbuf_(std::move(other.inbuf_)) {}

ClientConnection& ClientConnection::operator=(
    ClientConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    inbuf_ = std::move(other.inbuf_);
  }
  return *this;
}

ClientConnection::~ClientConnection() { Close(); }

void ClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ClientConnection::CloseWriteHalf() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status ClientConnection::Send(std::string_view command_text) {
  return SendRaw(EncodeRequest(command_text));
}

Status ClientConnection::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<ClientConnection::Response> ClientConnection::ReadResponse() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  while (true) {
    Response response;
    std::string error;
    DecodeStatus decoded =
        DecodeResponse(&inbuf_, &response.kind, &response.payload, &error);
    if (decoded == DecodeStatus::kFrame) return response;
    if (decoded == DecodeStatus::kMalformed) {
      return Status::ExecutionError("malformed response from server: " +
                                    error);
    }
    char chunk[16 * 1024];
    ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      return Status::ExecutionError(
          "server closed the connection mid-response");
    }
    inbuf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<ClientConnection::Response> ClientConnection::RoundTrip(
    std::string_view command_text) {
  ARIEL_RETURN_NOT_OK(Send(command_text));
  return ReadResponse();
}

}  // namespace ariel::server
