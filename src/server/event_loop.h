#ifndef ARIEL_SERVER_EVENT_LOOP_H_
#define ARIEL_SERVER_EVENT_LOOP_H_

#include <memory>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ariel::server {

/// One readiness notification from EventLoop::Wait.
struct IoEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Peer hangup or socket error; the fd should be torn down after any
  /// remaining readable bytes are drained.
  bool hangup = false;
};

/// Readiness-notification backend for the server's single-threaded loop.
/// Linux builds get an epoll implementation; poll(2) is the portable
/// fallback and a forced choice for testing (ARIEL_EVENT_BACKEND=poll).
/// Level-triggered semantics in both backends: an fd with unread input or
/// unflushed interest keeps reporting until serviced.
class EventLoop {
 public:
  virtual ~EventLoop() = default;

  [[nodiscard]] virtual Status Add(int fd, bool read, bool write) = 0;
  [[nodiscard]] virtual Status Modify(int fd, bool read, bool write) = 0;
  [[nodiscard]] virtual Status Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = indefinitely) and appends ready fds to
  /// `*events` (cleared first). Returning zero events on timeout is normal.
  [[nodiscard]] virtual Status Wait(int timeout_ms,
                                    std::vector<IoEvent>* events) = 0;

  /// "epoll" or "poll" — surfaced in the server banner and tests.
  virtual const char* name() const = 0;
};

/// Creates an event loop. `backend` is "" (epoll where available, else
/// poll), "epoll", or "poll"; anything else is an InvalidArgument error, as
/// is requesting epoll on a platform without it.
[[nodiscard]] Result<std::unique_ptr<EventLoop>> MakeEventLoop(
    std::string_view backend);

}  // namespace ariel::server

#endif  // ARIEL_SERVER_EVENT_LOOP_H_
