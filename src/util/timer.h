#ifndef ARIEL_UTIL_TIMER_H_
#define ARIEL_UTIL_TIMER_H_

#include <chrono>

namespace ariel {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses that
/// reproduce the paper's tables (total seconds per batch of operations).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction or last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ariel

#endif  // ARIEL_UTIL_TIMER_H_
