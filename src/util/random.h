#ifndef ARIEL_UTIL_RANDOM_H_
#define ARIEL_UTIL_RANDOM_H_

#include <cstdint>

namespace ariel {

/// A small, fast, deterministic PRNG (xorshift64*). Used for interval skip
/// list level choice and for workload generation in tests and benchmarks.
/// Deterministic seeding keeps test failures reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 1) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace ariel

#endif  // ARIEL_UTIL_RANDOM_H_
