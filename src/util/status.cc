#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace ariel {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kIncompleteInput:
      return "Incomplete input";
    case StatusCode::kSemanticError:
      return "Semantic error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kHalt:
      return "Halt";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of failed Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ariel
