#ifndef ARIEL_UTIL_STRING_UTIL_H_
#define ARIEL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ariel {

/// Lower-cases ASCII characters; used for case-insensitive keywords and
/// identifier normalization (POSTQUEL identifiers are case-insensitive).
std::string ToLower(std::string_view s);

/// True if `a` and `b` compare equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// Quotes a string literal for re-printing: wraps in double quotes and
/// backslash-escapes embedded quotes and backslashes.
std::string QuoteString(std::string_view s);

}  // namespace ariel

#endif  // ARIEL_UTIL_STRING_UTIL_H_
