#ifndef ARIEL_UTIL_METRICS_H_
#define ARIEL_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ariel {

// ---------------------------------------------------------------------------
// Engine-wide observability (ISSUE 2 tentpole).
//
// Hot paths (token propagation, selection stabs, joins) update counters
// through pre-registered handles: a handle is one pointer to an atomic cell,
// and an update is one relaxed fetch_add — no string lookup, no lock, no
// allocation. Registration (cold: engine construction, tests) takes a mutex
// and is idempotent per name, so two registrations of "tokens_emitted"
// share a cell.
//
// Compiling with ARIEL_NO_METRICS (CMake: -DARIEL_METRICS=OFF) turns every
// handle update into a no-op while keeping the whole API compilable; the
// ≤5% instrumentation-overhead budget is measured against that build.
// ---------------------------------------------------------------------------

namespace metrics_internal {

struct Baseline;  // epoch captured by MetricsRegistry::Reset (metrics.cc)

struct CounterCell {
  std::string name;
  size_t index = 0;  // registration ordinal; key into the reset baseline
  std::atomic<uint64_t> value{0};
};

struct GaugeCell {
  std::string name;
  size_t index = 0;
  std::atomic<int64_t> value{0};
};

/// Histogram over uint64 samples (typically nanoseconds) with fixed
/// log2-scale buckets: bucket b counts samples whose bit width is b, i.e.
/// bucket 0 holds {0}, bucket b holds [2^(b-1), 2^b) for b >= 1, and the
/// last bucket absorbs everything wider.
inline constexpr size_t kHistogramBuckets = 40;

struct HistogramCell {
  std::string name;
  size_t index = 0;
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
};

inline constexpr size_t BucketFor(uint64_t v) {
  const size_t width = static_cast<size_t>(std::bit_width(v));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

}  // namespace metrics_internal

/// Monotonic counter handle. Copyable, trivially destructible; the cell it
/// points into lives as long as its registry. Reads subtract the registry's
/// current reset baseline (see MetricsRegistry::Reset), so `value()` reports
/// the count since the last reset while the cell itself stays monotonic.
class Counter {
 public:
  Counter() = default;

  void Increment(uint64_t n = 1) const {
#ifndef ARIEL_NO_METRICS
    if (cell_ != nullptr) {
      cell_->value.fetch_add(n, std::memory_order_relaxed);
    }
#else
    (void)n;
#endif
  }

  uint64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter(metrics_internal::CounterCell* cell,
          const std::atomic<const metrics_internal::Baseline*>* baseline)
      : cell_(cell), baseline_(baseline) {}
  metrics_internal::CounterCell* cell_ = nullptr;
  const std::atomic<const metrics_internal::Baseline*>* baseline_ = nullptr;
};

/// Last-write-wins gauge handle.
class Gauge {
 public:
  Gauge() = default;

  /// Last-write-wins: value() reads `v` afterwards regardless of any reset
  /// baseline (Set re-anchors against the current epoch — out-of-line, it
  /// needs the Baseline layout; Set sites are cold: connection lifecycle,
  /// transaction frames).
  void Set(int64_t v) const;

  void Add(int64_t delta) const {
#ifndef ARIEL_NO_METRICS
    if (cell_ != nullptr) {
      cell_->value.fetch_add(delta, std::memory_order_relaxed);
    }
#else
    (void)delta;
#endif
  }

  int64_t value() const;

 private:
  friend class MetricsRegistry;
  Gauge(metrics_internal::GaugeCell* cell,
        const std::atomic<const metrics_internal::Baseline*>* baseline)
      : cell_(cell), baseline_(baseline) {}
  metrics_internal::GaugeCell* cell_ = nullptr;
  const std::atomic<const metrics_internal::Baseline*>* baseline_ = nullptr;
};

/// Snapshot of one histogram (see HistogramCell for bucket semantics).
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, metrics_internal::kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
  /// Upper bound of the log2 bucket containing the q-quantile (0 < q <= 1).
  uint64_t ApproxQuantile(double q) const;
};

/// Log2-bucket histogram handle, sized for nanosecond timings.
class Histogram {
 public:
  Histogram() = default;

  void Observe(uint64_t v) const {
#ifndef ARIEL_NO_METRICS
    if (cell_ != nullptr) {
      cell_->count.fetch_add(1, std::memory_order_relaxed);
      cell_->sum.fetch_add(v, std::memory_order_relaxed);
      cell_->buckets[metrics_internal::BucketFor(v)].fetch_add(
          1, std::memory_order_relaxed);
    }
#else
    (void)v;
#endif
  }

  HistogramData Snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram(metrics_internal::HistogramCell* cell,
            const std::atomic<const metrics_internal::Baseline*>* baseline)
      : cell_(cell), baseline_(baseline) {}
  metrics_internal::HistogramCell* cell_ = nullptr;
  const std::atomic<const metrics_internal::Baseline*>* baseline_ = nullptr;
};

/// Owns the metric cells. Cells live in deques so registration never moves
/// them — outstanding handles stay valid for the registry's lifetime.
///
/// Reset() is a single atomic epoch swap, not a cell-by-cell zeroing: the
/// cells stay monotonic forever, and a reset publishes one immutable
/// `Baseline` (the values captured at reset time) through an atomic pointer.
/// Every read subtracts the baseline. A concurrent reader therefore sees
/// either the whole old epoch or the whole new one — never a half-reset
/// registry — and in-flight Increments are never lost. Handles stay valid.
class MetricsRegistry {
 public:
  // Out-of-line: Baseline is incomplete here, and both members must be
  // instantiated where it is complete (the old-baselines deque owns them).
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter RegisterCounter(const std::string& name);
  Gauge RegisterGauge(const std::string& name);
  Histogram RegisterHistogram(const std::string& name);

  /// Starts a new epoch: every counter, gauge, and histogram reads as zero
  /// afterwards. One release-store of the baseline pointer; safe against
  /// concurrent readers and writers.
  void Reset();

  /// Name-sorted snapshots for rendering and bench JSON.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, int64_t>> Gauges() const;
  std::vector<std::pair<std::string, HistogramData>> Histograms() const;

  /// Human-readable dump: nonzero counters and gauges, populated histograms
  /// (count / mean / approx p50 / p99). Enumerated under one lock hold, so
  /// a concurrent Reset can't split the report across epochs.
  std::string Render() const;

 private:
  std::vector<std::pair<std::string, uint64_t>> CountersLocked() const;
  std::vector<std::pair<std::string, int64_t>> GaugesLocked() const;
  std::vector<std::pair<std::string, HistogramData>> HistogramsLocked() const;

  mutable std::mutex mu_;  // registration + enumeration only; never hot
  std::deque<metrics_internal::CounterCell> counters_;
  std::deque<metrics_internal::GaugeCell> gauges_;
  std::deque<metrics_internal::HistogramCell> histograms_;
  std::unordered_map<std::string, metrics_internal::CounterCell*>
      counter_index_;
  std::unordered_map<std::string, metrics_internal::GaugeCell*> gauge_index_;
  std::unordered_map<std::string, metrics_internal::HistogramCell*>
      histogram_index_;
  /// Current reset epoch; null before the first Reset. Old baselines are
  /// retired into `old_baselines_`, never freed, so a reader that loaded
  /// the pointer just before a reset keeps dereferencing valid memory.
  std::atomic<const metrics_internal::Baseline*> baseline_{nullptr};
  std::deque<std::unique_ptr<const metrics_internal::Baseline>>
      old_baselines_;
};

/// Observes the scope's wall time (in nanoseconds) into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram) : histogram_(histogram) {
#ifndef ARIEL_NO_METRICS
    start_ = std::chrono::steady_clock::now();
#endif
  }
  ~ScopedTimer() {
#ifndef ARIEL_NO_METRICS
    histogram_.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
#endif
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram histogram_;
#ifndef ARIEL_NO_METRICS
  std::chrono::steady_clock::time_point start_;
#endif
};

/// One recorded rule firing. The trigger is pre-rendered by the caller
/// (the rule monitor fires rarely compared to token traffic, so a string
/// here costs nothing that matters).
struct FiringTraceEntry {
  uint64_t seq = 0;  // assigned by the ring; 1-based, monotonic
  std::string rule;
  std::string trigger;     // e.g. "Δ+ emp tid 3:17"
  uint64_t transition_id = 0;
  double wall_ms = 0;
  uint64_t instantiations = 0;  // bindings consumed by this firing

  std::string ToString() const;
};

/// Fixed-capacity ring of the most recent rule firings (§2.2's recognize-act
/// cycle as first-class, inspectable events). Mutex-guarded: firings execute
/// whole action commands, so the lock is noise.
class FiringTraceRing {
 public:
  explicit FiringTraceRing(size_t capacity = 256) : capacity_(capacity) {}

  void Push(FiringTraceEntry entry);

  /// The most recent `n` entries, oldest first.
  std::vector<FiringTraceEntry> Recent(size_t n) const;

  /// Total firings recorded since the last Clear (>= entries retained).
  uint64_t total_recorded() const;

  /// Forgets every entry recorded after the first `total_mark` firings and
  /// rewinds the sequence counter, so firings undone by a transaction
  /// rollback leave no trace (the mark comes from total_recorded() at
  /// savepoint time). A mark at or beyond the current total is a no-op.
  void TruncateTo(uint64_t total_mark);

  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_seq_ = 1;
  std::deque<FiringTraceEntry> entries_;
};

/// Pre-registered handles for every engine counter — the only way hot paths
/// touch the registry. Groups follow the token lifecycle of §4: Δ-set
/// classification → selection network → per-rule join networks → P-nodes →
/// recognize-act cycle, plus the executor's plan/scan accounting.
struct EngineMetrics {
  MetricsRegistry registry;

  // TransitionManager: Δ-set classification (§4.3.1 cases 1-4).
  Counter tokens_emitted;      // every token handed to the network
  Counter tokens_plus;         // + tokens
  Counter tokens_minus;        // − tokens
  Counter tokens_delta_plus;   // Δ+ tokens
  Counter tokens_delta_minus;  // Δ− tokens
  Counter delta_case1_reexpressed;    // im*: modify of an inserted tuple
  Counter delta_case2_net_nothing;    // im*d: delete of an inserted tuple
  Counter delta_case3_first_modify;   // m+: first modify of a stored tuple
  Counter delta_case3_later_modify;   // m+: later modifies (Δ−/Δ+ replace)
  Counter delta_case4_modified_delete;  // m*d: delete of a modified tuple
  Counter transitions;         // BeginTransition calls

  // SelectionNetwork::Match (§4.1 index over selection predicates).
  Counter selection_tokens;           // tokens stabbed through the network
  Counter selection_stabs;            // interval-index stab queries issued
  Counter selection_residual_checks;  // residual-list candidates considered
  Counter selection_predicate_evals;  // full selection predicates evaluated
  Counter selection_matches;          // α-memories admitted a token
  Counter isl_node_visits;            // skip-list nodes touched by Stab

  // RuleNetwork joins (§4.2) and α-memory maintenance.
  Counter alpha_arrivals;      // token arrivals at α-memories
  Counter alpha_insertions;    // entries materialized into α-memories
  Counter alpha_removals;      // entries removed from α-memories
  Counter virtual_alpha_scans;  // base-relation recomputations of virtual α
  Counter join_probes;         // join candidates enumerated
  Counter join_index_probes;   // candidates found via B+tree equijoin paths
  Counter join_hash_probes;    // keyed lookups into join hash indexes
  Counter join_hash_hits;      // candidates returned by those lookups
  Counter join_scan_fallbacks;  // memory probes that had to scan entries

  // P-nodes (conflict set).
  Counter pnode_bindings_created;   // instantiations inserted
  Counter pnode_bindings_removed;   // instantiations deleted by retraction
  Counter pnode_bindings_consumed;  // instantiations drained by rule firing

  // Executor.
  Counter plans_built;
  Counter plan_cache_hits;
  Counter tuples_scanned;  // tuples produced by seq/index scan leaves
  Counter values_copied;   // Values deep-copied into Row slots

  // Columnar execution layer (ColumnBatch views + vector kernels).
  Counter columnar_batches_built;        // ColumnBatch materializations
  Counter columnar_batch_invalidations;  // cached views dropped by mutation
  Counter columnar_scans;           // seq scans evaluated through a batch
  Counter columnar_scan_rows;       // rows filtered by vector kernels
  Counter columnar_row_fallbacks;   // scans that used the audited row path
  Counter columnar_join_prefiltered;  // join candidates skipped by masks
  Counter columnar_classified_tokens;  // Δ-batch tokens classified columnwise

  // Recognize-act cycle.
  Counter rules_fired;
  Counter cycles_run;

  // Batch propagation pipeline (TransitionManager token batching + the
  // parallel rule-matching stage; 0 everywhere when batch_tokens = 0).
  Counter batch_flushes;      // token batches propagated
  Counter match_tasks;        // per-rule match tasks dispatched to the pool
  Counter match_steal_count;  // cross-deque steals inside those batches

  // Transaction / undo layer (src/txn).
  // Networked front end (src/server): connection lifecycle, request
  // traffic, and robustness events. All zero unless an ArielServer runs in
  // the process.
  Counter server_connections_accepted;
  Counter server_connections_rejected;   // over max_connections
  Counter server_connections_closed;
  Counter server_commands;               // commands executed for clients
  Counter server_bytes_read;
  Counter server_bytes_written;
  Counter server_frame_errors;           // malformed/oversized frames
  Counter server_backpressure_stalls;    // output-cap stall episodes
  Counter server_idle_disconnects;       // idle-timeout teardowns
  Counter server_txn_aborts_on_disconnect;  // dropped mid-transaction peers
  Gauge server_active_connections;

  // Concurrent read path (reader pool + snapshots). All zero when
  // DatabaseOptions.read_threads == 0 (fully serialized execution).
  Counter server_read_dispatches;   // read-only requests run on the pool
  Counter server_read_serialized;   // read-only requests kept on the engine
                                    // thread (txn open, pool off, barrier)
  Counter server_read_barrier_waits;  // writes that had to wait for reads
  Counter server_read_orphaned;     // read completions whose client vanished
  Gauge server_reads_in_flight;
  Counter snapshot_pins;            // TupleStore pins taken by snapshots
  Counter snapshot_cow_copies;      // mutations that cloned a pinned store

  Counter txn_undo_records;   // undo records appended to armed logs
  Counter txn_rollbacks;      // savepoint/command/explicit rollbacks replayed
  Counter txn_rule_aborts;    // rule firings undone by on_action_error=abort_rule
  Counter txn_ignored_action_errors;  // action errors dropped by =ignore
  Gauge txn_active_savepoints;  // open transaction frames right now

  // Adaptive network optimizer (src/network/adaptive_optimizer). All zero
  // unless DatabaseOptions.adaptive_optimize / ARIEL_ADAPTIVE is on.
  Counter adaptive_evaluations;       // per-rule cost evaluations run
  Counter adaptive_replans;           // networks actually rebuilt
  Counter adaptive_backend_switches;  // re-plans that flipped TREAT↔Rete
  Counter adaptive_alpha_switches;    // re-plans changing stored/virtual α
  Counter adaptive_index_switches;    // re-plans toggling hash join indexes
  Counter adaptive_columnar_switches;  // re-plans flipping row↔column exec
  Counter adaptive_join_order_switches;  // re-plans changing the probe order

  Histogram token_process_ns;  // DiscriminationNetwork::ProcessToken
  Histogram rule_firing_ns;    // RuleExecutionMonitor::FireRule
  Histogram batch_tokens_per_flush;  // tokens carried by each flushed batch
  Histogram batch_select_ns;  // batch stage 1: selection-network classify
  Histogram batch_match_ns;   // batch stage 2: per-rule join/α-memory work
  Histogram batch_merge_ns;   // batch stage 3: deterministic delta merge
  Histogram txn_rollback_ns;  // undo replay + engine-state restore per rollback
  Histogram server_command_ns;  // per-request execute+render (p50/p99 in
                                // `show stats` via the registry render)
  Histogram adaptive_replan_ns;  // full re-plan latency (compile → rebuild
                                 // → state carry-over → audit)

  FiringTraceRing firing_trace;

  EngineMetrics();
};

/// The process-wide engine metrics. Tests that assert exact values should
/// Reset() the registry (and Clear() the trace) first; engines in one
/// process share the counters by design — this is a measurement substrate,
/// not per-instance bookkeeping.
EngineMetrics& Metrics();

}  // namespace ariel

#endif  // ARIEL_UTIL_METRICS_H_
