#include "util/thread_pool.h"

#include <algorithm>

namespace ariel {

ThreadPool::ThreadPool(size_t num_workers) {
  num_workers = std::max<size_t>(num_workers, 1);
  // One deque per worker plus one for the thread calling RunAll.
  deques_.reserve(num_workers + 1);
  for (size_t i = 0; i < num_workers + 1; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunAll(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  const size_t caller = deques_.size() - 1;
  // Publish the task count before any task becomes visible in a deque: a
  // straggler worker from the previous batch may still be scanning inside
  // WorkUntilDrained and can pop a new task the moment it is pushed, so its
  // completion decrement must find the count already in place (otherwise the
  // decrement underflows and is then overwritten, wedging the batch).
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ += tasks.size();
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    Deque& dq = *deques_[i % deques_.size()];
    std::lock_guard<std::mutex> lock(dq.mu);
    dq.tasks.push_back(std::move(tasks[i]));
  }
  // Bump the generation only after every task is pushed: a parked worker
  // woken earlier would find empty deques, return to the wait with the new
  // generation already seen, and sleep through the whole batch.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++batch_generation_;
  }
  wake_cv_.notify_all();

  WorkUntilDrained(caller);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::Submit(Task task) {
  // Same publication order as RunAll: count first, then the task, then the
  // generation bump that wakes a parked worker (see RunAll's comments).
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  const size_t target =
      next_submit_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    Deque& dq = *deques_[target];
    std::lock_guard<std::mutex> lock(dq.mu);
    dq.tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++batch_generation_;
  }
  // One new task: one woken worker suffices; an already-awake worker can
  // also steal it before the wakeup lands.
  wake_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

bool ThreadPool::PopOwn(size_t home, Task* task) {
  Deque& dq = *deques_[home];
  std::lock_guard<std::mutex> lock(dq.mu);
  if (dq.tasks.empty()) return false;
  *task = std::move(dq.tasks.front());
  dq.tasks.pop_front();
  return true;
}

bool ThreadPool::StealOne(size_t thief, Task* task) {
  // Steal from the back of the fullest other deque, splitting contended
  // queues instead of racing the owner for the front.
  size_t victim = deques_.size();
  size_t victim_size = 0;
  for (size_t i = 0; i < deques_.size(); ++i) {
    if (i == thief) continue;
    std::lock_guard<std::mutex> lock(deques_[i]->mu);
    if (deques_[i]->tasks.size() > victim_size) {
      victim = i;
      victim_size = deques_[i]->tasks.size();
    }
  }
  if (victim == deques_.size()) return false;
  Deque& dq = *deques_[victim];
  std::lock_guard<std::mutex> lock(dq.mu);
  if (dq.tasks.empty()) return false;  // raced another thief
  *task = std::move(dq.tasks.back());
  dq.tasks.pop_back();
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::WorkUntilDrained(size_t home) {
  Task task;
  while (PopOwn(home, &task) || StealOne(home, &task)) {
    task();
    task = nullptr;  // release captures before signalling completion
    std::lock_guard<std::mutex> lock(mu_);
    if (--outstanding_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::WorkerLoop(size_t index) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] {
        return shutdown_ || batch_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = batch_generation_;
    }
    WorkUntilDrained(index);
  }
}

}  // namespace ariel
