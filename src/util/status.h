#ifndef ARIEL_UTIL_STATUS_H_
#define ARIEL_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace ariel {

/// Error categories used across the engine. Codes are coarse on purpose:
/// callers branch on broad classes (parse error vs. runtime error), while the
/// message carries the specifics.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // malformed input from the caller (bad value, bad name)
  kParseError,        // lexer/parser rejected a command string
  kIncompleteInput,   // input is a valid prefix; more text may complete it
  kSemanticError,     // command parsed but is not meaningful (unknown column)
  kNotFound,          // named object does not exist
  kAlreadyExists,     // named object exists and duplicates are not allowed
  kExecutionError,    // runtime failure while evaluating a plan
  kInternal,          // invariant violation inside the engine (a bug)
  kNotSupported,      // recognized but unimplemented construct
  kHalt,              // `halt` executed inside a rule action (not an error)
};

/// Returns a human-readable name for a status code ("Parse error", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, modeled on the Status idiom used by
/// Arrow and RocksDB. The engine does not throw exceptions; every fallible
/// operation returns Status or Result<T>.
///
/// The OK status carries no allocation; error statuses carry a code plus a
/// message describing what went wrong.
///
/// The class itself is [[nodiscard]]: any call that returns a Status by value
/// and ignores it is a compile error under -Werror=unused-result. Errors must
/// be propagated (ARIEL_RETURN_NOT_OK), checked, or explicitly ignored via
/// ARIEL_IGNORE_STATUS with a reason.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  /// The input ends mid-construct (unterminated block, rule, string, ...):
  /// it is not wrong, just unfinished. Interactive front ends (the shell,
  /// the server protocol) branch on this code to keep reading instead of
  /// reporting an error — never on error-message wording.
  [[nodiscard]] static Status IncompleteInput(std::string msg) {
    return Status(StatusCode::kIncompleteInput, std::move(msg));
  }
  [[nodiscard]] static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  [[nodiscard]] static Status Halt() { return Status(StatusCode::kHalt, "halt executed"); }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsHalt() const { return code_ == StatusCode::kHalt; }
  bool IsIncompleteInput() const {
    return code_ == StatusCode::kIncompleteInput;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error pair: holds T on success, a non-OK Status on failure.
/// Mirrors arrow::Result. Accessing the value of a failed Result aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return Status::...(...);` propagates errors naturally.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!status_.ok()) internal::DieBadResultAccess(status_);
}

/// Explicitly discards a Status where ignoring the error is intentional and
/// safe (e.g. best-effort cleanup). Grep-able, and keeps -Werror=unused-result
/// satisfied without a bare cast.
#define ARIEL_IGNORE_STATUS(expr)                  \
  do {                                             \
    ::ariel::Status _ignored_st = (expr);          \
    (void)_ignored_st;                             \
  } while (0)

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define ARIEL_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::ariel::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates an expression yielding Result<T>; on error returns the Status,
/// on success assigns the value to `lhs`.
#define ARIEL_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).value()

#define ARIEL_CONCAT_IMPL(a, b) a##b
#define ARIEL_CONCAT(a, b) ARIEL_CONCAT_IMPL(a, b)

#define ARIEL_ASSIGN_OR_RETURN(lhs, expr) \
  ARIEL_ASSIGN_OR_RETURN_IMPL(ARIEL_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace ariel

#endif  // ARIEL_UTIL_STATUS_H_
