#include "util/metrics.h"

#include <algorithm>
#include <sstream>

namespace ariel {

namespace metrics_internal {

/// One reset epoch: the raw cell values captured at Reset() time, indexed
/// by each cell's registration ordinal. Immutable once published; reads
/// subtract it. Cells registered after the capture fall past the end of a
/// vector and keep a zero baseline.
struct Baseline {
  std::vector<uint64_t> counters;
  std::vector<int64_t> gauges;
  std::vector<HistogramData> histograms;
};

}  // namespace metrics_internal

namespace {

uint64_t SaturatingSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

/// Reads one histogram cell and subtracts the baseline (when the cell is
/// older than the epoch).
HistogramData ReadHistogramCell(const metrics_internal::HistogramCell& cell,
                                const metrics_internal::Baseline* base) {
  HistogramData data;
  data.count = cell.count.load(std::memory_order_relaxed);
  data.sum = cell.sum.load(std::memory_order_relaxed);
  for (size_t b = 0; b < data.buckets.size(); ++b) {
    data.buckets[b] = cell.buckets[b].load(std::memory_order_relaxed);
  }
  if (base != nullptr && cell.index < base->histograms.size()) {
    const HistogramData& zero = base->histograms[cell.index];
    data.count = SaturatingSub(data.count, zero.count);
    data.sum = SaturatingSub(data.sum, zero.sum);
    for (size_t b = 0; b < data.buckets.size(); ++b) {
      data.buckets[b] = SaturatingSub(data.buckets[b], zero.buckets[b]);
    }
  }
  return data;
}

}  // namespace

uint64_t HistogramData::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > rank) {
      // Upper bound of bucket b: 0 for b == 0, else 2^b - 1.
      return b == 0 ? 0 : (uint64_t{1} << std::min<size_t>(b, 63)) - 1;
    }
  }
  return ~uint64_t{0};
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter MetricsRegistry::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return Counter(it->second, &baseline_);
  counters_.emplace_back();
  counters_.back().name = name;
  counters_.back().index = counters_.size() - 1;
  counter_index_.emplace(name, &counters_.back());
  return Counter(&counters_.back(), &baseline_);
}

Gauge MetricsRegistry::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return Gauge(it->second, &baseline_);
  gauges_.emplace_back();
  gauges_.back().name = name;
  gauges_.back().index = gauges_.size() - 1;
  gauge_index_.emplace(name, &gauges_.back());
  return Gauge(&gauges_.back(), &baseline_);
}

Histogram MetricsRegistry::RegisterHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return Histogram(it->second, &baseline_);
  histograms_.emplace_back();
  histograms_.back().name = name;
  histograms_.back().index = histograms_.size() - 1;
  histogram_index_.emplace(name, &histograms_.back());
  return Histogram(&histograms_.back(), &baseline_);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  auto epoch = std::make_unique<metrics_internal::Baseline>();
  epoch->counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    epoch->counters.push_back(c.value.load(std::memory_order_relaxed));
  }
  epoch->gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    epoch->gauges.push_back(g.value.load(std::memory_order_relaxed));
  }
  epoch->histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    epoch->histograms.push_back(ReadHistogramCell(h, nullptr));
  }
  // One release store publishes the whole epoch; readers acquire-load the
  // pointer once per read, so they see the entire old or entire new epoch.
  // Retired baselines are kept alive for stragglers mid-dereference.
  const metrics_internal::Baseline* published = epoch.get();
  old_baselines_.push_back(std::move(epoch));
  baseline_.store(published, std::memory_order_release);
}

uint64_t Counter::value() const {
  if (cell_ == nullptr) return 0;
  const uint64_t raw = cell_->value.load(std::memory_order_relaxed);
  const metrics_internal::Baseline* base =
      baseline_ != nullptr ? baseline_->load(std::memory_order_acquire)
                           : nullptr;
  if (base != nullptr && cell_->index < base->counters.size()) {
    return SaturatingSub(raw, base->counters[cell_->index]);
  }
  return raw;
}

void Gauge::Set(int64_t v) const {
#ifndef ARIEL_NO_METRICS
  if (cell_ == nullptr) return;
  // Re-anchor against the current epoch so value() reads exactly `v`: the
  // cell stores raw = v + baseline. A Reset racing this store (cold paths
  // both) can skew the gauge by at most the pre-Set value until the next
  // Set re-anchors; in the engine both run on the serialized write path.
  int64_t base = 0;
  const metrics_internal::Baseline* epoch =
      baseline_ != nullptr ? baseline_->load(std::memory_order_acquire)
                           : nullptr;
  if (epoch != nullptr && cell_->index < epoch->gauges.size()) {
    base = epoch->gauges[cell_->index];
  }
  cell_->value.store(v + base, std::memory_order_relaxed);
#else
  (void)v;
#endif
}

int64_t Gauge::value() const {
  if (cell_ == nullptr) return 0;
  const int64_t raw = cell_->value.load(std::memory_order_relaxed);
  const metrics_internal::Baseline* base =
      baseline_ != nullptr ? baseline_->load(std::memory_order_acquire)
                           : nullptr;
  if (base != nullptr && cell_->index < base->gauges.size()) {
    return raw - base->gauges[cell_->index];
  }
  return raw;
}

HistogramData Histogram::Snapshot() const {
  if (cell_ == nullptr) return HistogramData{};
  const metrics_internal::Baseline* base =
      baseline_ != nullptr ? baseline_->load(std::memory_order_acquire)
                           : nullptr;
  return ReadHistogramCell(*cell_, base);
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::CountersLocked() const {
  const metrics_internal::Baseline* base =
      baseline_.load(std::memory_order_acquire);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_) {
    uint64_t v = c.value.load(std::memory_order_relaxed);
    if (base != nullptr && c.index < base->counters.size()) {
      v = SaturatingSub(v, base->counters[c.index]);
    }
    out.emplace_back(c.name, v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugesLocked()
    const {
  const metrics_internal::Baseline* base =
      baseline_.load(std::memory_order_acquire);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    int64_t v = g.value.load(std::memory_order_relaxed);
    if (base != nullptr && g.index < base->gauges.size()) {
      v -= base->gauges[g.index];
    }
    out.emplace_back(g.name, v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, HistogramData>>
MetricsRegistry::HistogramsLocked() const {
  const metrics_internal::Baseline* base =
      baseline_.load(std::memory_order_acquire);
  std::vector<std::pair<std::string, HistogramData>> out;
  out.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    out.emplace_back(h.name, ReadHistogramCell(h, base));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return CountersLocked();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return GaugesLocked();
}

std::vector<std::pair<std::string, HistogramData>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return HistogramsLocked();
}

std::string MetricsRegistry::Render() const {
  // One lock hold across all three enumerations: a concurrent Reset either
  // lands wholly before this render or wholly after it.
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "counters:\n";
  size_t shown = 0;
  for (const auto& [name, value] : CountersLocked()) {
    if (value == 0) continue;
    os << "  " << name << " = " << value << "\n";
    ++shown;
  }
  for (const auto& [name, value] : GaugesLocked()) {
    if (value == 0) continue;
    os << "  " << name << " = " << value << "\n";
    ++shown;
  }
  if (shown == 0) os << "  (all zero)\n";
  bool header = false;
  for (const auto& [name, data] : HistogramsLocked()) {
    if (data.count == 0) continue;
    if (!header) {
      os << "timers:\n";
      header = true;
    }
    os << "  " << name << ": count=" << data.count
       << " mean=" << static_cast<uint64_t>(data.Mean())
       << " p50<=" << data.ApproxQuantile(0.5)
       << " p99<=" << data.ApproxQuantile(0.99) << "\n";
  }
  return os.str();
}

std::string FiringTraceEntry::ToString() const {
  std::ostringstream os;
  os << "#" << seq << " " << rule << " <- " << trigger << " (transition "
     << transition_id << ", " << wall_ms << " ms, " << instantiations
     << " instantiation" << (instantiations == 1 ? "" : "s") << ")";
  return os.str();
}

void FiringTraceRing::Push(FiringTraceEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<FiringTraceEntry> FiringTraceRing::Recent(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take = std::min(n, entries_.size());
  return std::vector<FiringTraceEntry>(entries_.end() - take, entries_.end());
}

uint64_t FiringTraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

void FiringTraceRing::TruncateTo(uint64_t total_mark) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!entries_.empty() && entries_.back().seq > total_mark) {
    entries_.pop_back();
  }
  if (next_seq_ > total_mark + 1) next_seq_ = total_mark + 1;
}

void FiringTraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  next_seq_ = 1;
}

EngineMetrics::EngineMetrics()
    : tokens_emitted(registry.RegisterCounter("tokens_emitted")),
      tokens_plus(registry.RegisterCounter("tokens_plus")),
      tokens_minus(registry.RegisterCounter("tokens_minus")),
      tokens_delta_plus(registry.RegisterCounter("tokens_delta_plus")),
      tokens_delta_minus(registry.RegisterCounter("tokens_delta_minus")),
      delta_case1_reexpressed(
          registry.RegisterCounter("delta_case1_reexpressed")),
      delta_case2_net_nothing(
          registry.RegisterCounter("delta_case2_net_nothing")),
      delta_case3_first_modify(
          registry.RegisterCounter("delta_case3_first_modify")),
      delta_case3_later_modify(
          registry.RegisterCounter("delta_case3_later_modify")),
      delta_case4_modified_delete(
          registry.RegisterCounter("delta_case4_modified_delete")),
      transitions(registry.RegisterCounter("transitions")),
      selection_tokens(registry.RegisterCounter("selection_tokens")),
      selection_stabs(registry.RegisterCounter("selection_stabs")),
      selection_residual_checks(
          registry.RegisterCounter("selection_residual_checks")),
      selection_predicate_evals(
          registry.RegisterCounter("selection_predicate_evals")),
      selection_matches(registry.RegisterCounter("selection_matches")),
      isl_node_visits(registry.RegisterCounter("isl_node_visits")),
      alpha_arrivals(registry.RegisterCounter("alpha_arrivals")),
      alpha_insertions(registry.RegisterCounter("alpha_insertions")),
      alpha_removals(registry.RegisterCounter("alpha_removals")),
      virtual_alpha_scans(registry.RegisterCounter("virtual_alpha_scans")),
      join_probes(registry.RegisterCounter("join_probes")),
      join_index_probes(registry.RegisterCounter("join_index_probes")),
      join_hash_probes(registry.RegisterCounter("join_hash_probes")),
      join_hash_hits(registry.RegisterCounter("join_hash_hits")),
      join_scan_fallbacks(registry.RegisterCounter("join_scan_fallbacks")),
      pnode_bindings_created(
          registry.RegisterCounter("pnode_bindings_created")),
      pnode_bindings_removed(
          registry.RegisterCounter("pnode_bindings_removed")),
      pnode_bindings_consumed(
          registry.RegisterCounter("pnode_bindings_consumed")),
      plans_built(registry.RegisterCounter("plans_built")),
      plan_cache_hits(registry.RegisterCounter("plan_cache_hits")),
      tuples_scanned(registry.RegisterCounter("tuples_scanned")),
      values_copied(registry.RegisterCounter("values_copied")),
      columnar_batches_built(
          registry.RegisterCounter("columnar_batches_built")),
      columnar_batch_invalidations(
          registry.RegisterCounter("columnar_batch_invalidations")),
      columnar_scans(registry.RegisterCounter("columnar_scans")),
      columnar_scan_rows(registry.RegisterCounter("columnar_scan_rows")),
      columnar_row_fallbacks(
          registry.RegisterCounter("columnar_row_fallbacks")),
      columnar_join_prefiltered(
          registry.RegisterCounter("columnar_join_prefiltered")),
      columnar_classified_tokens(
          registry.RegisterCounter("columnar_classified_tokens")),
      rules_fired(registry.RegisterCounter("rules_fired")),
      cycles_run(registry.RegisterCounter("cycles_run")),
      batch_flushes(registry.RegisterCounter("batch_flushes")),
      match_tasks(registry.RegisterCounter("match_tasks")),
      match_steal_count(registry.RegisterCounter("match_steal_count")),
      server_connections_accepted(
          registry.RegisterCounter("server_connections_accepted")),
      server_connections_rejected(
          registry.RegisterCounter("server_connections_rejected")),
      server_connections_closed(
          registry.RegisterCounter("server_connections_closed")),
      server_commands(registry.RegisterCounter("server_commands")),
      server_bytes_read(registry.RegisterCounter("server_bytes_read")),
      server_bytes_written(registry.RegisterCounter("server_bytes_written")),
      server_frame_errors(registry.RegisterCounter("server_frame_errors")),
      server_backpressure_stalls(
          registry.RegisterCounter("server_backpressure_stalls")),
      server_idle_disconnects(
          registry.RegisterCounter("server_idle_disconnects")),
      server_txn_aborts_on_disconnect(
          registry.RegisterCounter("server_txn_aborts_on_disconnect")),
      server_active_connections(
          registry.RegisterGauge("server_active_connections")),
      server_read_dispatches(
          registry.RegisterCounter("server_read_dispatches")),
      server_read_serialized(
          registry.RegisterCounter("server_read_serialized")),
      server_read_barrier_waits(
          registry.RegisterCounter("server_read_barrier_waits")),
      server_read_orphaned(registry.RegisterCounter("server_read_orphaned")),
      server_reads_in_flight(
          registry.RegisterGauge("server_reads_in_flight")),
      snapshot_pins(registry.RegisterCounter("snapshot_pins")),
      snapshot_cow_copies(registry.RegisterCounter("snapshot_cow_copies")),
      txn_undo_records(registry.RegisterCounter("txn_undo_records")),
      txn_rollbacks(registry.RegisterCounter("txn_rollbacks")),
      txn_rule_aborts(registry.RegisterCounter("txn_rule_aborts")),
      txn_ignored_action_errors(
          registry.RegisterCounter("txn_ignored_action_errors")),
      txn_active_savepoints(
          registry.RegisterGauge("txn_active_savepoints")),
      adaptive_evaluations(registry.RegisterCounter("adaptive_evaluations")),
      adaptive_replans(registry.RegisterCounter("adaptive_replans")),
      adaptive_backend_switches(
          registry.RegisterCounter("adaptive_backend_switches")),
      adaptive_alpha_switches(
          registry.RegisterCounter("adaptive_alpha_switches")),
      adaptive_index_switches(
          registry.RegisterCounter("adaptive_index_switches")),
      adaptive_columnar_switches(
          registry.RegisterCounter("adaptive_columnar_switches")),
      adaptive_join_order_switches(
          registry.RegisterCounter("adaptive_join_order_switches")),
      token_process_ns(registry.RegisterHistogram("token_process_ns")),
      rule_firing_ns(registry.RegisterHistogram("rule_firing_ns")),
      batch_tokens_per_flush(
          registry.RegisterHistogram("batch_tokens_per_flush")),
      batch_select_ns(registry.RegisterHistogram("batch_select_ns")),
      batch_match_ns(registry.RegisterHistogram("batch_match_ns")),
      batch_merge_ns(registry.RegisterHistogram("batch_merge_ns")),
      txn_rollback_ns(registry.RegisterHistogram("txn_rollback_ns")),
      server_command_ns(registry.RegisterHistogram("server_command_ns")),
      adaptive_replan_ns(registry.RegisterHistogram("adaptive_replan_ns")) {}

EngineMetrics& Metrics() {
  // Intentionally leaked: handles embedded across the engine hold raw cell
  // pointers, so the registry must outlive every other static destructor.
  static EngineMetrics* metrics = new EngineMetrics();  // ariel-lint: allow(raw-new)
  return *metrics;
}

}  // namespace ariel
