#include "util/metrics.h"

#include <algorithm>
#include <sstream>

namespace ariel {

uint64_t HistogramData::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > rank) {
      // Upper bound of bucket b: 0 for b == 0, else 2^b - 1.
      return b == 0 ? 0 : (uint64_t{1} << std::min<size_t>(b, 63)) - 1;
    }
  }
  return ~uint64_t{0};
}

Counter MetricsRegistry::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return Counter(it->second);
  counters_.emplace_back();
  counters_.back().name = name;
  counter_index_.emplace(name, &counters_.back());
  return Counter(&counters_.back());
}

Gauge MetricsRegistry::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return Gauge(it->second);
  gauges_.emplace_back();
  gauges_.back().name = name;
  gauge_index_.emplace(name, &gauges_.back());
  return Gauge(&gauges_.back());
}

Histogram MetricsRegistry::RegisterHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return Histogram(it->second);
  histograms_.emplace_back();
  histograms_.back().name = name;
  histogram_index_.emplace(name, &histograms_.back());
  return Histogram(&histograms_.back());
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) c.value.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g.value.store(0, std::memory_order_relaxed);
  for (auto& h : histograms_) {
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  if (cell_ == nullptr) return data;
  data.count = cell_->count.load(std::memory_order_relaxed);
  data.sum = cell_->sum.load(std::memory_order_relaxed);
  for (size_t b = 0; b < data.buckets.size(); ++b) {
    data.buckets[b] = cell_->buckets[b].load(std::memory_order_relaxed);
  }
  return data;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_) {
    out.emplace_back(c.name, c.value.load(std::memory_order_relaxed));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    out.emplace_back(g.name, g.value.load(std::memory_order_relaxed));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, HistogramData>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramData>> out;
  out.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramData data;
    data.count = h.count.load(std::memory_order_relaxed);
    data.sum = h.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < data.buckets.size(); ++b) {
      data.buckets[b] = h.buckets[b].load(std::memory_order_relaxed);
    }
    out.emplace_back(h.name, data);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::string MetricsRegistry::Render() const {
  std::ostringstream os;
  os << "counters:\n";
  size_t shown = 0;
  for (const auto& [name, value] : Counters()) {
    if (value == 0) continue;
    os << "  " << name << " = " << value << "\n";
    ++shown;
  }
  for (const auto& [name, value] : Gauges()) {
    if (value == 0) continue;
    os << "  " << name << " = " << value << "\n";
    ++shown;
  }
  if (shown == 0) os << "  (all zero)\n";
  bool header = false;
  for (const auto& [name, data] : Histograms()) {
    if (data.count == 0) continue;
    if (!header) {
      os << "timers:\n";
      header = true;
    }
    os << "  " << name << ": count=" << data.count
       << " mean=" << static_cast<uint64_t>(data.Mean())
       << " p50<=" << data.ApproxQuantile(0.5)
       << " p99<=" << data.ApproxQuantile(0.99) << "\n";
  }
  return os.str();
}

std::string FiringTraceEntry::ToString() const {
  std::ostringstream os;
  os << "#" << seq << " " << rule << " <- " << trigger << " (transition "
     << transition_id << ", " << wall_ms << " ms, " << instantiations
     << " instantiation" << (instantiations == 1 ? "" : "s") << ")";
  return os.str();
}

void FiringTraceRing::Push(FiringTraceEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<FiringTraceEntry> FiringTraceRing::Recent(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take = std::min(n, entries_.size());
  return std::vector<FiringTraceEntry>(entries_.end() - take, entries_.end());
}

uint64_t FiringTraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

void FiringTraceRing::TruncateTo(uint64_t total_mark) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!entries_.empty() && entries_.back().seq > total_mark) {
    entries_.pop_back();
  }
  if (next_seq_ > total_mark + 1) next_seq_ = total_mark + 1;
}

void FiringTraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  next_seq_ = 1;
}

EngineMetrics::EngineMetrics()
    : tokens_emitted(registry.RegisterCounter("tokens_emitted")),
      tokens_plus(registry.RegisterCounter("tokens_plus")),
      tokens_minus(registry.RegisterCounter("tokens_minus")),
      tokens_delta_plus(registry.RegisterCounter("tokens_delta_plus")),
      tokens_delta_minus(registry.RegisterCounter("tokens_delta_minus")),
      delta_case1_reexpressed(
          registry.RegisterCounter("delta_case1_reexpressed")),
      delta_case2_net_nothing(
          registry.RegisterCounter("delta_case2_net_nothing")),
      delta_case3_first_modify(
          registry.RegisterCounter("delta_case3_first_modify")),
      delta_case3_later_modify(
          registry.RegisterCounter("delta_case3_later_modify")),
      delta_case4_modified_delete(
          registry.RegisterCounter("delta_case4_modified_delete")),
      transitions(registry.RegisterCounter("transitions")),
      selection_tokens(registry.RegisterCounter("selection_tokens")),
      selection_stabs(registry.RegisterCounter("selection_stabs")),
      selection_residual_checks(
          registry.RegisterCounter("selection_residual_checks")),
      selection_predicate_evals(
          registry.RegisterCounter("selection_predicate_evals")),
      selection_matches(registry.RegisterCounter("selection_matches")),
      isl_node_visits(registry.RegisterCounter("isl_node_visits")),
      alpha_arrivals(registry.RegisterCounter("alpha_arrivals")),
      alpha_insertions(registry.RegisterCounter("alpha_insertions")),
      alpha_removals(registry.RegisterCounter("alpha_removals")),
      virtual_alpha_scans(registry.RegisterCounter("virtual_alpha_scans")),
      join_probes(registry.RegisterCounter("join_probes")),
      join_index_probes(registry.RegisterCounter("join_index_probes")),
      join_hash_probes(registry.RegisterCounter("join_hash_probes")),
      join_hash_hits(registry.RegisterCounter("join_hash_hits")),
      join_scan_fallbacks(registry.RegisterCounter("join_scan_fallbacks")),
      pnode_bindings_created(
          registry.RegisterCounter("pnode_bindings_created")),
      pnode_bindings_removed(
          registry.RegisterCounter("pnode_bindings_removed")),
      pnode_bindings_consumed(
          registry.RegisterCounter("pnode_bindings_consumed")),
      plans_built(registry.RegisterCounter("plans_built")),
      plan_cache_hits(registry.RegisterCounter("plan_cache_hits")),
      tuples_scanned(registry.RegisterCounter("tuples_scanned")),
      values_copied(registry.RegisterCounter("values_copied")),
      columnar_batches_built(
          registry.RegisterCounter("columnar_batches_built")),
      columnar_batch_invalidations(
          registry.RegisterCounter("columnar_batch_invalidations")),
      columnar_scans(registry.RegisterCounter("columnar_scans")),
      columnar_scan_rows(registry.RegisterCounter("columnar_scan_rows")),
      columnar_row_fallbacks(
          registry.RegisterCounter("columnar_row_fallbacks")),
      columnar_join_prefiltered(
          registry.RegisterCounter("columnar_join_prefiltered")),
      columnar_classified_tokens(
          registry.RegisterCounter("columnar_classified_tokens")),
      rules_fired(registry.RegisterCounter("rules_fired")),
      cycles_run(registry.RegisterCounter("cycles_run")),
      batch_flushes(registry.RegisterCounter("batch_flushes")),
      match_tasks(registry.RegisterCounter("match_tasks")),
      match_steal_count(registry.RegisterCounter("match_steal_count")),
      server_connections_accepted(
          registry.RegisterCounter("server_connections_accepted")),
      server_connections_rejected(
          registry.RegisterCounter("server_connections_rejected")),
      server_connections_closed(
          registry.RegisterCounter("server_connections_closed")),
      server_commands(registry.RegisterCounter("server_commands")),
      server_bytes_read(registry.RegisterCounter("server_bytes_read")),
      server_bytes_written(registry.RegisterCounter("server_bytes_written")),
      server_frame_errors(registry.RegisterCounter("server_frame_errors")),
      server_backpressure_stalls(
          registry.RegisterCounter("server_backpressure_stalls")),
      server_idle_disconnects(
          registry.RegisterCounter("server_idle_disconnects")),
      server_txn_aborts_on_disconnect(
          registry.RegisterCounter("server_txn_aborts_on_disconnect")),
      server_active_connections(
          registry.RegisterGauge("server_active_connections")),
      txn_undo_records(registry.RegisterCounter("txn_undo_records")),
      txn_rollbacks(registry.RegisterCounter("txn_rollbacks")),
      txn_rule_aborts(registry.RegisterCounter("txn_rule_aborts")),
      txn_ignored_action_errors(
          registry.RegisterCounter("txn_ignored_action_errors")),
      txn_active_savepoints(
          registry.RegisterGauge("txn_active_savepoints")),
      adaptive_evaluations(registry.RegisterCounter("adaptive_evaluations")),
      adaptive_replans(registry.RegisterCounter("adaptive_replans")),
      adaptive_backend_switches(
          registry.RegisterCounter("adaptive_backend_switches")),
      adaptive_alpha_switches(
          registry.RegisterCounter("adaptive_alpha_switches")),
      adaptive_index_switches(
          registry.RegisterCounter("adaptive_index_switches")),
      adaptive_columnar_switches(
          registry.RegisterCounter("adaptive_columnar_switches")),
      adaptive_join_order_switches(
          registry.RegisterCounter("adaptive_join_order_switches")),
      token_process_ns(registry.RegisterHistogram("token_process_ns")),
      rule_firing_ns(registry.RegisterHistogram("rule_firing_ns")),
      batch_tokens_per_flush(
          registry.RegisterHistogram("batch_tokens_per_flush")),
      batch_select_ns(registry.RegisterHistogram("batch_select_ns")),
      batch_match_ns(registry.RegisterHistogram("batch_match_ns")),
      batch_merge_ns(registry.RegisterHistogram("batch_merge_ns")),
      txn_rollback_ns(registry.RegisterHistogram("txn_rollback_ns")),
      server_command_ns(registry.RegisterHistogram("server_command_ns")),
      adaptive_replan_ns(registry.RegisterHistogram("adaptive_replan_ns")) {}

EngineMetrics& Metrics() {
  // Intentionally leaked: handles embedded across the engine hold raw cell
  // pointers, so the registry must outlive every other static destructor.
  static EngineMetrics* metrics = new EngineMetrics();  // ariel-lint: allow(raw-new)
  return *metrics;
}

}  // namespace ariel
