#include "util/string_util.h"

#include <cctype>

namespace ariel {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string QuoteString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace ariel
