#ifndef ARIEL_UTIL_THREAD_POOL_H_
#define ARIEL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ariel {

/// A work-stealing pool for the parallel rule-matching stage of batch
/// propagation. Workers are persistent (created once, parked between
/// batches); RunAll distributes a task list round-robin across per-worker
/// deques and blocks until every task has finished. The calling thread
/// participates: it drains its own deque and steals alongside the workers,
/// so a pool of N workers gives N+1 executing contexts during a batch.
///
/// Stealing: a context pops its own deque from the front and steals from the
/// back of the fullest other deque, so contended deques split rather than
/// interleave. Tasks must not throw — engine code reports through Status,
/// which callers capture into per-task slots.
///
/// The pool imposes no ordering: batch determinism comes from the staged
/// P-node deltas being applied in serial order afterwards (see
/// DiscriminationNetwork::ProcessBatch), never from scheduling.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `num_workers` persistent worker threads (at least 1).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Runs every task to completion, helping from the calling thread.
  /// Not reentrant and not thread-safe: one batch at a time.
  void RunAll(std::vector<Task> tasks);

  /// Enqueues one task for asynchronous execution on a worker thread and
  /// returns immediately — the caller does not participate (the server's
  /// read-dispatch mode, vs. RunAll's blocking batch mode). Thread-safe
  /// against concurrent Submit/WaitIdle calls, but a pool must not mix
  /// Submit with RunAll. Completion is signalled by the task itself (e.g.
  /// through a completion queue); WaitIdle offers a global drain.
  void Submit(Task task);

  /// Blocks until every queued task has finished (teardown drain).
  void WaitIdle();

  /// Lifetime count of cross-deque steals (work-stealing observability;
  /// ProcessBatch publishes the per-batch delta as `match_steal_count`).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct Deque {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Drains deque `home`, then steals, until the batch has no pending work.
  void WorkUntilDrained(size_t home);
  bool PopOwn(size_t home, Task* task);
  bool StealOne(size_t thief, Task* task);
  void WorkerLoop(size_t index);

  // deques_[0..num_workers-1] belong to the workers; the last one belongs
  // to the thread calling RunAll.
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;   // workers park here between batches
  std::condition_variable done_cv_;   // RunAll waits here for the last task
  uint64_t batch_generation_ = 0;     // bumped per RunAll, guarded by mu_
  size_t outstanding_ = 0;            // tasks not yet finished, guarded by mu_
  bool shutdown_ = false;

  std::atomic<uint64_t> steals_{0};
  /// Round-robin cursor distributing Submit tasks across worker deques.
  std::atomic<uint64_t> next_submit_{0};
};

}  // namespace ariel

#endif  // ARIEL_UTIL_THREAD_POOL_H_
