// Ablation: classic TREAT (every pattern α-memory stored) versus A-TREAT
// with the adaptive stored/virtual policy versus all-virtual, over a rule
// set mixing selective rules (the Figure 10 generator) with unselective
// ones (sal > 0 watchers). The adaptive policy should sit near all-stored
// on token-test speed while saving most of the memory the unselective
// rules would otherwise materialize.

#include "bench/bench_report.h"
#include <string>

#include "bench/paper_workload.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

struct Sample {
  double activate_seconds;
  size_t alpha_bytes;
  double token_us;
};

Sample RunPolicy(AlphaMemoryPolicy policy, int emp_size) {
  DatabaseOptions options;
  options.alpha_policy = policy;
  options.auto_activate_rules = false;
  Database db(options);

  CheckOk(db.Execute("create emp (name = string, age = int, sal = float, "
                     "dno = int, jno = int)")
              .status(),
          "create emp");
  CheckOk(db.Execute("create dept (dno = int, name = string, "
                     "building = string)")
              .status(),
          "create dept");
  CheckOk(db.Execute("create bench_log (name = string)").status(), "create");
  for (int d = 0; d < 7; ++d) {
    CheckOk(db.Execute("append dept (dno=" + std::to_string(d + 1) +
                       ", name=\"D" + std::to_string(d) +
                       "\", building=\"B\")")
                .status(),
            "dept row");
  }
  HeapRelation* emp = db.catalog().GetRelation("emp");
  for (int e = 0; e < emp_size; ++e) {
    Tuple tuple(std::vector<Value>{Value::String("e" + std::to_string(e)),
                                   Value::Int(30),
                                   Value::Float(10000.0 + e % 50 * 1000),
                                   Value::Int(e % 7 + 1), Value::Int(1)});
    CheckOk(emp->Insert(std::move(tuple)).status(), "emp row");
  }

  // 40 selective two-variable rules plus 10 unselective watchers.
  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i) {
    CheckOk(db.Execute(PaperRuleText(2, i)).status(), "define");
    names.push_back("bench_rule_2_" + std::to_string(i));
  }
  for (int i = 0; i < 10; ++i) {
    std::string name = "watch_" + std::to_string(i);
    CheckOk(db.Execute("define rule " + name +
                       " if emp.sal > 0 and emp.dno = dept.dno and "
                       "dept.name = \"D" + std::to_string(i % 7) + "\" "
                       "then append to bench_log (name = emp.name)")
                .status(),
            "define watcher");
    names.push_back(name);
  }

  Sample sample;
  Timer timer;
  for (const std::string& name : names) {
    CheckOk(db.rules().ActivateRule(name), "activate");
  }
  sample.activate_seconds = timer.ElapsedSeconds();

  sample.alpha_bytes = 0;
  for (const std::string& name : names) {
    sample.alpha_bytes +=
        db.rules().GetRule(name)->network->AlphaFootprintBytes();
  }

  const int kTokens = 100;
  timer.Reset();
  for (int t = 0; t < kTokens; ++t) {
    Tuple tuple(std::vector<Value>{Value::String("probe"), Value::Int(30),
                                   Value::Float(10500.0 + (t % 10) * 1000),
                                   Value::Int(t % 7 + 1), Value::Int(1)});
    CheckOk(db.transitions().Insert(emp, std::move(tuple)).status(),
            "token");
  }
  sample.token_us = timer.ElapsedMicros() / kTokens;
  return sample;
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("treat_vs_atreat");
  std::printf("=== Ablation: TREAT (all stored) vs A-TREAT policies ===\n");
  std::printf("50 rules (40 selective + 10 unselective), emp token test\n\n");
  std::printf("%-10s %-12s %-14s %-16s %-16s\n", "emp size", "policy",
              "activate(s)", "alpha bytes", "emp token (us)");
  for (int emp_size : {1000, 10000}) {
    for (auto [mode, name] :
         {std::pair{AlphaMemoryPolicy::Mode::kAllStored, "treat"},
          std::pair{AlphaMemoryPolicy::Mode::kAdaptive, "adaptive"},
          std::pair{AlphaMemoryPolicy::Mode::kAllVirtual, "virtual"}}) {
      AlphaMemoryPolicy policy;
      policy.mode = mode;
      Sample s = RunPolicy(policy, emp_size);
      std::printf("%-10d %-12s %-14.4f %-16zu %-16.2f\n", emp_size, name,
                  s.activate_seconds, s.alpha_bytes, s.token_us);
    }
  }
  return 0;
}
