// Reproduces Figure 9 of the paper: total time to install and activate 25
// to 200 one-tuple-variable rules, and the time to test a token generated
// by a single insert into emp.
//
// Expected shape (paper §6): installation and activation grow roughly
// linearly with the number of rules; token-test time stays small and nearly
// flat thanks to the selection-predicate index.

#include "bench/paper_workload.h"

int main() {
  using namespace ariel;
  using namespace ariel::bench;

  std::vector<FigureRow> rows;
  for (int n = 25; n <= 200; n += 25) {
    rows.push_back(RunFigureProtocolMedian(/*rule_type=*/1, n, DatabaseOptions{}));
  }
  PrintFigureTable("Figure 9",
                   "one-tuple-variable rules (C1 < emp.sal <= C2)", rows);
  return 0;
}
