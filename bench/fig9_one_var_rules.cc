// Reproduces Figure 9 of the paper: total time to install and activate 25
// to 200 one-tuple-variable rules, and the time to test a token generated
// by a single insert into emp.
//
// Expected shape (paper §6): installation and activation grow roughly
// linearly with the number of rules; token-test time stays small and nearly
// flat thanks to the selection-predicate index.

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

int main() {
  using namespace ariel;
  using namespace ariel::bench;

  BenchReporter reporter("fig9_one_var_rules");
  const bool smoke = SmokeMode();
  const int max_rules = smoke ? 25 : 200;
  const int trials = smoke ? 1 : 3;
  std::vector<FigureRow> rows;
  for (int n = 25; n <= max_rules; n += 25) {
    rows.push_back(RunFigureProtocolMedian(/*rule_type=*/1, n,
                                           DatabaseOptions{}, trials));
  }
  PrintFigureTable("Figure 9",
                   "one-tuple-variable rules (C1 < emp.sal <= C2)", rows);
  return 0;
}
