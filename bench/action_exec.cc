// Reproduces the §6 in-text measurement: the time to run the action of a
// type 1, 2 or 3 rule. The paper reports ~0.06 s in all cases — the act
// phase (query modification binding via PnodeScan, plan construction by the
// always-reoptimize strategy, and plan execution) does not depend on the
// number of tuple variables in the condition, because the P-node already
// holds the joined bindings.
//
// Method: load the rule's P-node by inserting a matching tuple through the
// storage gateway (no cycle), then time monitor().RunCycle() — exactly the
// act phase.

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

double TimeActionExecution(int rule_type) {
  DatabaseOptions options;
  Database db(options);
  SetupPaperDatabase(&db);
  CheckOk(db.Execute(PaperRuleText(rule_type, 0)).status(), "define rule");

  HeapRelation* emp = db.catalog().GetRelation("emp");
  const int kTrials = 31;
  std::vector<double> samples;
  for (int trial = 0; trial < kTrials; ++trial) {
    // One matching tuple: sal inside rule 0's (10000, 11000] interval.
    Tuple tuple(std::vector<Value>{Value::String("probe"), Value::Int(30),
                                   Value::Float(10500.0), Value::Int(1),
                                   Value::Int(1)});
    CheckOk(db.transitions().Insert(emp, std::move(tuple)).status(),
            "probe insert");

    Timer timer;
    CheckOk(db.monitor().RunCycle(), "act phase");
    samples.push_back(timer.ElapsedMillis());

    for (TupleId tid : emp->AllTupleIds()) {
      const Tuple* t = emp->Get(tid);
      if (t != nullptr && t->at(0) == Value::String("probe")) {
        CheckOk(db.transitions().Delete(emp, tid), "cleanup");
      }
    }
  }
  return Median(&samples);
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("action_exec");
  std::printf("=== §6 in-text: rule-action execution time ===\n");
  std::printf("(paper: ~0.06 s for type 1, 2 and 3 rules alike — the act\n");
  std::printf(" phase cost is independent of the number of tuple variables)\n");
  std::printf("%-10s %-22s\n", "rule type", "action execution (ms)");
  for (int rule_type = 1; rule_type <= 3; ++rule_type) {
    double ms = TimeActionExecution(rule_type);
    std::printf("%-10d %-22.4f\n", rule_type, ms);
  }
  return 0;
}
