// Ablation for §4.2: virtual vs stored α-memories — the paper's
// space-for-time trade. The SalesClerkRule-style rule carries a
// low-selectivity predicate (emp.sal > 30000 matches most employees), so a
// stored α-memory duplicates a large fraction of emp. A virtual memory
// stores only the predicate, but every token joining *through* it re-scans
// the base relation.
//
// Measured per emp cardinality: α-memory bytes, the time to test a token
// that joins through the emp memory (an insert into dept), and the time to
// test a token arriving at the emp memory itself (an insert into emp).

#include "bench/bench_report.h"
#include <string>

#include "bench/paper_workload.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

struct Sample {
  size_t alpha_bytes;
  double dept_token_us;  // joins through the emp memory
  double emp_token_us;   // arrives at the emp memory
};

Sample RunPolicy(AlphaMemoryPolicy::Mode mode, int emp_size,
                 bool index_emp_dno = false) {
  DatabaseOptions options;
  options.alpha_policy.mode = mode;
  Database db(options);

  CheckOk(db.Execute("create emp (name = string, age = int, sal = float, "
                     "dno = int, jno = int)")
              .status(),
          "create emp");
  CheckOk(db.Execute("create dept (dno = int, name = string, "
                     "building = string)")
              .status(),
          "create dept");
  CheckOk(db.Execute("create watch (name = string)").status(), "create");

  for (int d = 0; d < 7; ++d) {
    CheckOk(db.Execute("append dept (dno=" + std::to_string(d + 1) +
                       ", name=\"D" + std::to_string(d) +
                       "\", building=\"B\")")
                .status(),
            "dept row");
  }
  // 90% of employees pass the sal > 30000 predicate: low selectivity.
  HeapRelation* emp = db.catalog().GetRelation("emp");
  for (int e = 0; e < emp_size; ++e) {
    double sal = (e % 10 == 0) ? 20000.0 : 30001.0 + e;
    Tuple tuple(std::vector<Value>{Value::String("e" + std::to_string(e)),
                                   Value::Int(30), Value::Float(sal),
                                   Value::Int(e % 7 + 1), Value::Int(1)});
    CheckOk(emp->Insert(std::move(tuple)).status(), "emp row");
  }

  if (index_emp_dno) {
    CheckOk(db.Execute("define index on emp (dno)").status(), "index");
  }
  CheckOk(db.Execute("define rule watch_sales "
                     "if emp.sal > 30000 and emp.dno = dept.dno and "
                     "dept.name = \"D0\" "
                     "then append to watch (name = emp.name)")
              .status(),
          "define rule");

  Sample sample;
  const Rule* rule = db.rules().GetRule("watch_sales");
  sample.alpha_bytes = rule->network->AlphaFootprintBytes();

  HeapRelation* dept = db.catalog().GetRelation("dept");
  const int kTokens = 50;
  Timer timer;
  for (int t = 0; t < kTokens; ++t) {
    Tuple tuple(std::vector<Value>{Value::Int(100 + t),
                                   Value::String("D0"),
                                   Value::String("B")});
    CheckOk(db.transitions().Insert(dept, std::move(tuple)).status(),
            "dept token");
  }
  sample.dept_token_us = timer.ElapsedMicros() / kTokens;

  timer.Reset();
  for (int t = 0; t < kTokens; ++t) {
    Tuple tuple(std::vector<Value>{Value::String("probe"), Value::Int(30),
                                   Value::Float(40000.0), Value::Int(7),
                                   Value::Int(1)});
    CheckOk(db.transitions().Insert(emp, std::move(tuple)).status(),
            "emp token");
  }
  sample.emp_token_us = timer.ElapsedMicros() / kTokens;
  return sample;
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("virtual_alpha");
  std::printf("=== Ablation: virtual vs stored α-memories (§4.2) ===\n");
  std::printf("rule: emp.sal > 30000 (90%% selective) joined to dept\n\n");
  std::printf("%-10s %-10s %-14s %-20s %-18s\n", "emp size", "policy",
              "alpha bytes", "dept token (us)", "emp token (us)");
  for (int emp_size : {1000, 10000, 50000}) {
    for (auto [mode, name, indexed] :
         {std::tuple{AlphaMemoryPolicy::Mode::kAllStored, "stored", false},
          std::tuple{AlphaMemoryPolicy::Mode::kAllVirtual, "virtual", false},
          std::tuple{AlphaMemoryPolicy::Mode::kAllVirtual, "virt+idx",
                     true}}) {
      Sample s = RunPolicy(mode, emp_size, indexed);
      std::printf("%-10d %-10s %-14zu %-20.2f %-18.2f\n", emp_size, name,
                  s.alpha_bytes, s.dept_token_us, s.emp_token_us);
    }
  }
  std::printf(
      "\nExpected shape: virtual saves O(|emp|) memory; tokens joining\n"
      "through the virtual memory pay a base-relation scan instead of a\n"
      "memory iteration (the paper's space-for-time trade). With a B+tree\n"
      "on the join attribute, the §4.2 index-probe path removes most of\n"
      "that penalty while keeping the memory savings.\n");
  return 0;
}
