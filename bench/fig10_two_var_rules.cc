// Reproduces Figure 10 of the paper: install/activate/token-test times for
// two-tuple-variable rules (the emp selection plus the emp.dno = dept.dno
// join condition). Costs rise over Figure 9 because activation primes two
// α-memories and loads the P-node through a join, and each matching token
// joins against the dept memory.

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

int main() {
  using namespace ariel;
  using namespace ariel::bench;

  BenchReporter reporter(JoinHashEnabled() ? "fig10_two_var_rules"
                                           : "fig10_two_var_rules_scan");
  const bool smoke = SmokeMode();
  const int max_rules = smoke ? 25 : 200;
  const int trials = smoke ? 1 : 3;
  DatabaseOptions options;
  options.join_hash_indexes = JoinHashEnabled();
  std::vector<FigureRow> rows;
  for (int n = 25; n <= max_rules; n += 25) {
    rows.push_back(RunFigureProtocolMedian(/*rule_type=*/2, n, options,
                                           trials));
  }
  PrintFigureTable(
      "Figure 10",
      "two-tuple-variable rules (emp selection + emp.dno = dept.dno)", rows);
  for (const FigureRow& row : rows) {
    const std::string key = "rules" + std::to_string(row.num_rules);
    reporter.AddResult(key + "_install_s", row.install_seconds);
    reporter.AddResult(key + "_activate_s", row.activate_seconds);
    reporter.AddResult(key + "_token_test_ms", row.token_test_ms);
  }

  // Beyond the paper: the paper's dept relation holds 7 tuples, which caps
  // the work a probe can save; sweeping |dept| shows the hash-index
  // separation (join_probes stays flat instead of growing with |dept|).
  std::vector<ScalingRow> scaling;
  for (int size : smoke ? std::vector<int>{7}
                        : std::vector<int>{7, 70, 700}) {
    scaling.push_back(RunJoinScalingPoint(/*rule_type=*/2, /*num_rules=*/25,
                                          size, smoke ? 1 : 3));
  }
  PrintScalingTable("Figure 10 extension", scaling);
  for (const ScalingRow& row : scaling) {
    reporter.AddResult("dept" + std::to_string(row.relation_size) +
                           "_token_test_ms",
                       row.token_test_ms);
  }
  return 0;
}
