// Reproduces Figure 10 of the paper: install/activate/token-test times for
// two-tuple-variable rules (the emp selection plus the emp.dno = dept.dno
// join condition). Costs rise over Figure 9 because activation primes two
// α-memories and loads the P-node through a join, and each matching token
// joins against the dept memory.

#include "bench/paper_workload.h"

int main() {
  using namespace ariel;
  using namespace ariel::bench;

  std::vector<FigureRow> rows;
  for (int n = 25; n <= 200; n += 25) {
    rows.push_back(RunFigureProtocolMedian(/*rule_type=*/2, n, DatabaseOptions{}));
  }
  PrintFigureTable(
      "Figure 10",
      "two-tuple-variable rules (emp selection + emp.dno = dept.dno)", rows);
  return 0;
}
