// Reproduces Figure 10 of the paper: install/activate/token-test times for
// two-tuple-variable rules (the emp selection plus the emp.dno = dept.dno
// join condition). Costs rise over Figure 9 because activation primes two
// α-memories and loads the P-node through a join, and each matching token
// joins against the dept memory.

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

int main() {
  using namespace ariel;
  using namespace ariel::bench;

  BenchReporter reporter("fig10_two_var_rules");
  const bool smoke = SmokeMode();
  const int max_rules = smoke ? 25 : 200;
  const int trials = smoke ? 1 : 3;
  std::vector<FigureRow> rows;
  for (int n = 25; n <= max_rules; n += 25) {
    rows.push_back(RunFigureProtocolMedian(/*rule_type=*/2, n,
                                           DatabaseOptions{}, trials));
  }
  PrintFigureTable(
      "Figure 10",
      "two-tuple-variable rules (emp selection + emp.dno = dept.dno)", rows);
  return 0;
}
