// Transaction-layer overhead on the bulk_transitions workload: the same
// 8-rule emp×dept token storm, run three ways per batch setting —
//   bare    mutations outside any transaction frame (undo log disarmed;
//           byte-for-byte the pre-transaction-layer hot path),
//   commit  inside begin…commit (every mutation appends an undo record,
//           commit discards them),
//   abort   inside begin…abort (adds the full compensating replay).
// The commit column is the number that must stay within 5% of bare: a
// disarmed log costs one predicted branch per mutation, an armed one a
// record append. The abort column prices rollback itself (informational —
// aborts are off the steady-state path).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/paper_workload.h"
#include "util/timer.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

constexpr int kDeptRows = 128;
constexpr int kSalDomain = kDeptRows * 100;

enum class Mode { kBare, kCommit, kAbort };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kBare: return "bare";
    case Mode::kCommit: return "commit";
    case Mode::kAbort: return "abort";
  }
  return "?";
}

struct RunResult {
  double mutate_seconds = 0;  // append + replace phases (the gated number)
  double finish_seconds = 0;  // commit / abort cost, 0 for bare
  uint64_t undo_records = 0;
};

RunResult RunPoint(int size, size_t batch_tokens, Mode mode) {
  DatabaseOptions options;
  options.auto_activate_rules = false;
  options.alpha_policy.mode = AlphaMemoryPolicy::Mode::kAllStored;
  options.batch_tokens = batch_tokens;
  Database db(options);

  CheckOk(db.Execute("create emp (sal = int, dno = int)").status(),
          "create emp");
  CheckOk(db.Execute("create dept (dno = int, lo = int, hi = int, "
                     "budget = int)")
              .status(),
          "create dept");
  CheckOk(db.Execute("create sink (x = int)").status(), "create sink");

  const std::vector<std::string> conds = {
      "emp.dno = dept.dno",
      "emp.dno = dept.dno and emp.sal >= 0",
      "emp.sal >= dept.lo and emp.sal < dept.hi",
      "emp.sal + 10 >= dept.lo and emp.sal + 10 < dept.hi",
      "emp.sal + 25 >= dept.lo and emp.sal + 25 < dept.hi",
      "emp.sal + 40 >= dept.lo and emp.sal + 40 < dept.hi",
      "emp.dno = dept.dno and emp.sal > dept.budget",
      "emp.dno = dept.dno and emp.sal < dept.budget + 100",
  };
  for (size_t i = 0; i < conds.size(); ++i) {
    CheckOk(db.Execute("define rule r" + std::to_string(i) + " if " +
                       conds[i] + " then append to sink (x = 1)")
                .status(),
            "define rule");
  }

  HeapRelation* emp = db.catalog().GetRelation("emp");
  HeapRelation* dept = db.catalog().GetRelation("dept");
  for (int d = 0; d < kDeptRows; ++d) {
    CheckOk(db.transitions()
                .Insert(dept, Tuple(std::vector<Value>{
                                  Value::Int(d), Value::Int(d * 100),
                                  Value::Int(d * 100 + 25),
                                  Value::Int((d * 37) % kSalDomain)}))
                .status(),
            "populate dept");
  }
  for (size_t i = 0; i < conds.size(); ++i) {
    CheckOk(db.rules().ActivateRule("r" + std::to_string(i)), "activate");
  }

  RunResult out;
  if (mode != Mode::kBare) {
    // The explicit frame arms the undo log; transitions driven below then
    // append one record per mutation, exactly as a command frame would.
    CheckOk(db.Execute("begin").status(), "begin");
  }

  Timer timer;
  db.transitions().BeginTransition();
  for (int i = 0; i < size; ++i) {
    CheckOk(db.transitions()
                .Insert(emp, Tuple(std::vector<Value>{
                                 Value::Int((i * 97) % kSalDomain),
                                 Value::Int(i % kDeptRows)}))
                .status(),
            "append emp");
  }
  CheckOk(db.transitions().EndTransition(), "end append transition");

  std::vector<TupleId> tids = emp->AllTupleIds();
  db.transitions().BeginTransition();
  for (size_t i = 0; i < tids.size(); i += 2) {
    Tuple next = *emp->Get(tids[i]);
    next.at(0) = Value::Int((next.at(0).int_value() + 13) % kSalDomain);
    CheckOk(db.transitions().Update(emp, tids[i], std::move(next), {"sal"}),
            "replace emp");
  }
  CheckOk(db.transitions().EndTransition(), "end replace transition");
  out.mutate_seconds = timer.ElapsedSeconds();

  out.undo_records = db.txn().undo_log().size();
  if (mode != Mode::kBare) {
    Timer finish;
    CheckOk(
        db.Execute(mode == Mode::kCommit ? "commit" : "abort").status(),
        mode == Mode::kCommit ? "commit" : "abort");
    out.finish_seconds = finish.ElapsedSeconds();
  }
  return out;
}

/// Best-of-N: the minimum is the least-noise estimator for a fixed
/// deterministic workload.
RunResult BestOf(int trials, int size, size_t batch_tokens, Mode mode) {
  RunResult best = RunPoint(size, batch_tokens, mode);
  for (int t = 1; t < trials; ++t) {
    RunResult r = RunPoint(size, batch_tokens, mode);
    if (r.mutate_seconds < best.mutate_seconds) best = r;
  }
  return best;
}

}  // namespace

int main() {
  BenchReporter reporter("txn_overhead");
  const bool smoke = SmokeMode();
  const std::vector<int> sizes =
      smoke ? std::vector<int>{100} : std::vector<int>{1000, 10000};
  const std::vector<size_t> batch_settings = {0, 1024};
  const int trials = smoke ? 1 : 5;

  std::printf("=== transaction overhead on the bulk_transitions workload "
              "===\n");
  std::printf("(bare = undo log disarmed; commit = begin…commit, one undo "
              "record per mutation; abort = begin…abort, full compensating "
              "replay; overhead%% compares mutate-phase wall time to bare)\n");
  std::printf("%-8s %-8s %-8s %-12s %-12s %-10s %-10s %-10s\n", "size",
              "batch", "mode", "mutate(s)", "finish(s)", "overhead", "undo",
              "records/s");
  bool ok = true;
  for (int size : sizes) {
    for (size_t batch : batch_settings) {
      const RunResult bare = BestOf(trials, size, batch, Mode::kBare);
      const RunResult commit = BestOf(trials, size, batch, Mode::kCommit);
      const RunResult abort = BestOf(trials, size, batch, Mode::kAbort);
      for (const auto& [mode, r] :
           {std::pair<Mode, const RunResult&>{Mode::kBare, bare},
            {Mode::kCommit, commit},
            {Mode::kAbort, abort}}) {
        const double overhead =
            bare.mutate_seconds > 0
                ? (r.mutate_seconds / bare.mutate_seconds - 1.0) * 100.0
                : 0.0;
        std::printf("%-8d %-8zu %-8s %-12.4f %-12.4f %-+9.2f%% %-10llu "
                    "%-10.0f\n",
                    size, batch, ModeName(mode), r.mutate_seconds,
                    r.finish_seconds, overhead,
                    static_cast<unsigned long long>(r.undo_records),
                    r.mutate_seconds > 0 && r.undo_records > 0
                        ? static_cast<double>(r.undo_records) /
                              r.mutate_seconds
                        : 0.0);
      }
      // The acceptance gate: armed-log mutation cost within 5% of bare at
      // the largest size (small sizes are noise-dominated).
      if (!smoke && size == sizes.back()) {
        const double overhead =
            (commit.mutate_seconds / bare.mutate_seconds - 1.0) * 100.0;
        if (overhead > 5.0) {
          std::printf("FAIL: commit-mode overhead %.2f%% exceeds 5%% at "
                      "size %d batch %zu\n",
                      overhead, size, batch);
          ok = false;
        }
      }
    }
  }
  std::printf(ok ? "PASS: commit-mode overhead within 5%% of bare\n"
                 : "FAIL: see above\n");
  return ok ? 0 : 1;
}
