// Equijoin candidate-path scaling: token-test cost against a joined
// relation of 10^2..10^5 tuples under the three probe strategies the engine
// offers —
//   scan:  stored α-memories, hash indexes off (the paper's plain TREAT
//          entry scan; O(|relation|) per probe)
//   hash:  stored α-memories with hash join indexes (O(1 + matches))
//   btree: virtual α-memories probed through a B+tree index on the join
//          attribute (§4.2's index-probe path; O(log n + matches))
// for a two-variable rule (r.k = s.k) and a three-variable chain
// (r.k = s.k and s.k = t.k). Keys are unique, so every probe has at most
// one match and the separation between the strategies is pure probe cost.

#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

enum class ProbeMode { kScan, kHash, kBtree };

const char* ModeName(ProbeMode mode) {
  switch (mode) {
    case ProbeMode::kScan: return "scan";
    case ProbeMode::kHash: return "hash";
    case ProbeMode::kBtree: return "btree";
  }
  return "?";
}

struct SweepRow {
  int vars;
  ProbeMode mode;
  int size;
  double token_ms;
  uint64_t join_probes;
};

SweepRow RunPoint(int vars, ProbeMode mode, int size, int trials) {
  DatabaseOptions options;
  options.auto_activate_rules = false;
  options.alpha_policy.mode = mode == ProbeMode::kBtree
                                  ? AlphaMemoryPolicy::Mode::kAllVirtual
                                  : AlphaMemoryPolicy::Mode::kAllStored;
  options.join_hash_indexes = mode == ProbeMode::kHash;
  Database db(options);

  CheckOk(db.Execute("create r (k = int, pad = int)").status(), "create r");
  CheckOk(db.Execute("create s (k = int, pad = int)").status(), "create s");
  CheckOk(db.Execute("create t (k = int, pad = int)").status(), "create t");
  CheckOk(db.Execute("create sink (x = int)").status(), "create sink");
  if (mode == ProbeMode::kBtree) {
    CheckOk(db.Execute("define index on s (k)").status(), "index s");
    if (vars >= 3) {
      CheckOk(db.Execute("define index on t (k)").status(), "index t");
    }
  }

  std::string cond = "r.k = s.k";
  if (vars >= 3) cond += " and s.k = t.k";
  CheckOk(db.Execute("define rule sweep if " + cond +
                     " then append to sink (x = 1)")
              .status(),
          "define rule");

  HeapRelation* r = db.catalog().GetRelation("r");
  HeapRelation* s = db.catalog().GetRelation("s");
  HeapRelation* t = db.catalog().GetRelation("t");
  for (int i = 0; i < size; ++i) {
    Tuple row(std::vector<Value>{Value::Int(i), Value::Int(i % 17)});
    CheckOk(db.transitions().Insert(s, row).status(), "populate s");
    if (vars >= 3) {
      CheckOk(db.transitions().Insert(t, std::move(row)).status(),
              "populate t");
    }
  }
  CheckOk(db.rules().ActivateRule("sweep"), "activate");

  SweepRow out;
  out.vars = vars;
  out.mode = mode;
  out.size = size;
  const uint64_t probes_before = CounterValue("join_probes");

  Timer timer;
  const int kTokensPerTrial = 20;
  std::vector<double> samples;
  for (int trial = 0; trial < trials; ++trial) {
    timer.Reset();
    for (int i = 0; i < kTokensPerTrial; ++i) {
      const int key = (i * (size / kTokensPerTrial + 1)) % size;
      CheckOk(db.transitions()
                  .Insert(r, Tuple(std::vector<Value>{Value::Int(key),
                                                      Value::Int(0)}))
                  .status(),
              "probe token");
    }
    samples.push_back(timer.ElapsedMillis() / kTokensPerTrial);
    for (TupleId tid : r->AllTupleIds()) {
      CheckOk(db.transitions().Delete(r, tid), "probe cleanup");
    }
  }
  out.token_ms = Median(&samples);
  out.join_probes = CounterValue("join_probes") - probes_before;
  return out;
}

}  // namespace

int main() {
  BenchReporter reporter("join_scaling");
  const bool smoke = SmokeMode();
  const int trials = smoke ? 1 : 3;
  const std::vector<int> sizes =
      smoke ? std::vector<int>{100}
            : std::vector<int>{100, 1000, 10000, 100000};

  std::printf("=== join scaling: token test vs joined-relation size ===\n");
  std::printf("(unique keys; scan = stored entries, hash = stored + hash "
              "index, btree = virtual + B+tree probe)\n");
  std::printf("%-6s %-7s %-10s %-16s %-14s\n", "vars", "mode", "size",
              "token test(ms)", "join_probes");
  for (int vars : {2, 3}) {
    for (ProbeMode mode :
         {ProbeMode::kScan, ProbeMode::kHash, ProbeMode::kBtree}) {
      for (int size : sizes) {
        SweepRow row = RunPoint(vars, mode, size, trials);
        std::printf("%-6d %-7s %-10d %-16.4f %-14llu\n", row.vars,
                    ModeName(row.mode), row.size, row.token_ms,
                    static_cast<unsigned long long>(row.join_probes));
        const std::string key = "v" + std::to_string(row.vars) + "_" +
                                ModeName(row.mode) + "_n" +
                                std::to_string(row.size);
        reporter.AddResult(key + "_token_ms", row.token_ms);
        reporter.AddResult(key + "_join_probes",
                           static_cast<double>(row.join_probes));
      }
    }
  }
  return 0;
}
