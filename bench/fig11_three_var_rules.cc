// Reproduces Figure 11 of the paper: install/activate/token-test times for
// three-tuple-variable rules (emp selection + dept join + job join).

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

int main() {
  using namespace ariel;
  using namespace ariel::bench;

  BenchReporter reporter(JoinHashEnabled() ? "fig11_three_var_rules"
                                           : "fig11_three_var_rules_scan");
  const bool smoke = SmokeMode();
  const int max_rules = smoke ? 25 : 200;
  const int trials = smoke ? 1 : 3;
  DatabaseOptions options;
  options.join_hash_indexes = JoinHashEnabled();
  std::vector<FigureRow> rows;
  for (int n = 25; n <= max_rules; n += 25) {
    rows.push_back(RunFigureProtocolMedian(/*rule_type=*/3, n, options,
                                           trials));
  }
  PrintFigureTable("Figure 11",
                   "three-tuple-variable rules (emp selection + dept join + "
                   "job join)",
                   rows);
  for (const FigureRow& row : rows) {
    const std::string key = "rules" + std::to_string(row.num_rules);
    reporter.AddResult(key + "_install_s", row.install_seconds);
    reporter.AddResult(key + "_activate_s", row.activate_seconds);
    reporter.AddResult(key + "_token_test_ms", row.token_test_ms);
  }

  // Beyond the paper: sweep |dept| = |job| to expose the probe-vs-scan
  // separation the 7/5-tuple paper relations cannot show (see Figure 10's
  // extension; the three-variable chain doubles the per-token probe work).
  std::vector<ScalingRow> scaling;
  for (int size : smoke ? std::vector<int>{7}
                        : std::vector<int>{7, 70, 700}) {
    scaling.push_back(RunJoinScalingPoint(/*rule_type=*/3, /*num_rules=*/25,
                                          size, smoke ? 1 : 3));
  }
  PrintScalingTable("Figure 11 extension", scaling);
  for (const ScalingRow& row : scaling) {
    reporter.AddResult("joined" + std::to_string(row.relation_size) +
                           "_token_test_ms",
                       row.token_test_ms);
  }
  return 0;
}
