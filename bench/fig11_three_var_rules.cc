// Reproduces Figure 11 of the paper: install/activate/token-test times for
// three-tuple-variable rules (emp selection + dept join + job join).

#include "bench/paper_workload.h"

int main() {
  using namespace ariel;
  using namespace ariel::bench;

  std::vector<FigureRow> rows;
  for (int n = 25; n <= 200; n += 25) {
    rows.push_back(RunFigureProtocolMedian(/*rule_type=*/3, n, DatabaseOptions{}));
  }
  PrintFigureTable("Figure 11",
                   "three-tuple-variable rules (emp selection + dept join + "
                   "job join)",
                   rows);
  return 0;
}
