// Reproduces Figure 11 of the paper: install/activate/token-test times for
// three-tuple-variable rules (emp selection + dept join + job join).

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

int main() {
  using namespace ariel;
  using namespace ariel::bench;

  BenchReporter reporter("fig11_three_var_rules");
  const bool smoke = SmokeMode();
  const int max_rules = smoke ? 25 : 200;
  const int trials = smoke ? 1 : 3;
  std::vector<FigureRow> rows;
  for (int n = 25; n <= max_rules; n += 25) {
    rows.push_back(RunFigureProtocolMedian(/*rule_type=*/3, n,
                                           DatabaseOptions{}, trials));
  }
  PrintFigureTable("Figure 11",
                   "three-tuple-variable rules (emp selection + dept join + "
                   "job join)",
                   rows);
  return 0;
}
