// Adaptive network optimization: can a rule that starts on the wrong
// network shape find the right one from live statistics — and does the
// adapted rule match the best statically-configured engine?
//
// Three experiments:
//   join sweep   probe-heavy equijoin tokens against a joined relation of
//                10^2..10^4 tuples. Statics: scan (stored, hash off), hash
//                (stored + hash index), btree (virtual + B+tree probe).
//                The adaptive engine STARTS as scan and must converge.
//   churn sweep  bulk append/delete churn through the joined relation with
//                a quiet probe side. Statics: stored + hash, all-virtual.
//                The per-memory split (probed side stored, churn side
//                virtual) is only reachable adaptively.
//   mid-run shift one engine, workload flips from probe-heavy to
//                churn-heavy halfway; measures re-plan latency
//                (adaptive_replan_ns) and post-adaptation throughput
//                against statics stuck on their install-time shape.
//
// All workloads run through Database::Execute so every command ends at a
// quiescence point where the adaptive optimizer may re-plan.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

enum class Config { kScan, kHash, kBtree, kAdaptive };

const char* ConfigName(Config c) {
  switch (c) {
    case Config::kScan: return "scan";
    case Config::kHash: return "hash";
    case Config::kBtree: return "btree";
    case Config::kAdaptive: return "adaptive";
  }
  return "?";
}

/// ARIEL_ADAPTIVE overrides DatabaseOptions, so pin it per configuration.
void PinAdaptiveEnv(bool on) {
  setenv("ARIEL_ADAPTIVE", on ? "1" : "0", /*overwrite=*/1);
}

HistogramData ReplanHistogram() {
  for (const auto& [name, data] : Metrics().registry.Histograms()) {
    if (name == "adaptive_replan_ns") return data;
  }
  return {};
}

uint64_t TotalReplans(Database* db) {
  uint64_t total = 0;
  for (const Rule* rule : db->rules().ActiveRules()) total += rule->replans;
  return total;
}

// ---------------------------------------------------------------------------
// Join sweep: probe-heavy tokens, adaptive starts on the scan shape.
// ---------------------------------------------------------------------------

struct JoinPoint {
  double token_ms;
  uint64_t replans;
};

JoinPoint RunJoinPoint(Config config, int size, int trials) {
  PinAdaptiveEnv(config == Config::kAdaptive);
  DatabaseOptions options;
  options.auto_activate_rules = false;
  options.alpha_policy.mode = config == Config::kBtree
                                  ? AlphaMemoryPolicy::Mode::kAllVirtual
                                  : AlphaMemoryPolicy::Mode::kAllStored;
  // The adaptive engine starts on the worst static shape (stored entry
  // scans) and has to find the hash path itself.
  options.join_hash_indexes = config == Config::kHash;
  Database db(options);

  CheckOk(db.Execute("create r (k = int, pad = int)").status(), "create r");
  CheckOk(db.Execute("create s (k = int, pad = int)").status(), "create s");
  CheckOk(db.Execute("create sink (x = int)").status(), "create sink");
  if (config == Config::kBtree || config == Config::kAdaptive) {
    CheckOk(db.Execute("define index on s (k)").status(), "index s");
  }
  CheckOk(db.Execute("define rule sweep if r.k = s.k "
                     "then append to sink (x = 1)")
              .status(),
          "define rule");

  HeapRelation* r = db.catalog().GetRelation("r");
  HeapRelation* s = db.catalog().GetRelation("s");
  for (int i = 0; i < size; ++i) {
    CheckOk(db.transitions()
                .Insert(s, Tuple(std::vector<Value>{Value::Int(i),
                                                    Value::Int(i % 17)}))
                .status(),
            "populate s");
  }
  CheckOk(db.rules().ActivateRule("sweep"), "activate");

  auto probe_tokens = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const int key = (i * 37) % size;
      CheckOk(db.Execute("append r (k = " + std::to_string(key) +
                         ", pad = 0)")
                  .status(),
              "probe token");
      if ((i + 1) % 16 == 0) {
        for (TupleId tid : r->AllTupleIds()) {
          CheckOk(db.transitions().Delete(r, tid), "probe cleanup");
        }
      }
    }
  };

  // Warmup: enough quiescence points (and tokens past adaptive_min_tokens)
  // for the adaptive engine to settle on its shape.
  probe_tokens(96);

  const int kTokensPerTrial = 32;
  std::vector<double> samples;
  Timer timer;
  for (int trial = 0; trial < trials; ++trial) {
    timer.Reset();
    probe_tokens(kTokensPerTrial);
    samples.push_back(timer.ElapsedMillis() / kTokensPerTrial);
  }
  JoinPoint out;
  out.token_ms = Median(&samples);
  out.replans = TotalReplans(&db);
  return out;
}

// ---------------------------------------------------------------------------
// Churn sweep: bulk append/delete through s, quiet probe side r. The best
// shape — r stored + hash, s virtual — is a per-memory split no uniform
// static config expresses.
// ---------------------------------------------------------------------------

double RunChurnPoint(Config config, int commands, uint64_t* replans) {
  PinAdaptiveEnv(config == Config::kAdaptive);
  DatabaseOptions options;
  options.auto_activate_rules = false;
  options.alpha_policy.mode = config == Config::kBtree
                                  ? AlphaMemoryPolicy::Mode::kAllVirtual
                                  : AlphaMemoryPolicy::Mode::kAllStored;
  options.join_hash_indexes = config != Config::kScan;
  Database db(options);

  CheckOk(db.Execute("create r (k = int, pad = int)").status(), "create r");
  CheckOk(db.Execute("create s (k = int, pad = int)").status(), "create s");
  CheckOk(db.Execute("create sink (x = int)").status(), "create sink");
  // B+tree paths on both join keys: every shape the engines might pick has
  // an index probe available.
  CheckOk(db.Execute("define index on r (k)").status(), "index r");
  CheckOk(db.Execute("define index on s (k)").status(), "index s");
  CheckOk(db.Execute("define rule churn if r.k = s.k "
                     "then append to sink (x = 1)")
              .status(),
          "define rule");

  HeapRelation* r = db.catalog().GetRelation("r");
  for (int i = 0; i < 8; ++i) {
    CheckOk(db.transitions()
                .Insert(r, Tuple(std::vector<Value>{Value::Int(1000000 + i),
                                                    Value::Int(0)}))
                .status(),
            "populate r");
  }
  CheckOk(db.rules().ActivateRule("churn"), "activate");

  int next_key = 0;
  auto churn_round = [&]() {
    // One bulk transition of 32 appends, then a bulk delete of the same
    // rows: 64 tokens through s per round, none matching r.
    std::string block = "do";
    for (int i = 0; i < 32; ++i) {
      block += " append s (k = " + std::to_string(next_key++) + ", pad = 0)";
    }
    block += " end";
    CheckOk(db.Execute(block).status(), "churn append");
    CheckOk(db.Execute("delete s where s.k >= 0").status(), "churn delete");
  };

  for (int i = 0; i < 8; ++i) churn_round();  // adaptive settles

  Timer timer;
  for (int i = 0; i < commands; ++i) churn_round();
  const double seconds = timer.ElapsedSeconds();
  if (replans != nullptr) *replans = TotalReplans(&db);
  return seconds > 0 ? (2.0 * commands) / seconds : 0;
}

// ---------------------------------------------------------------------------
// Mid-run shift: probe-heavy, then churn-heavy; the adaptive engine starts
// on the scan shape, converges, then re-plans again when the workload
// flips. Statics stay where they were installed.
// ---------------------------------------------------------------------------

struct ShiftResult {
  double phase1_token_ms;
  double phase2_cmds_per_sec;
  uint64_t replans;
  double replan_latency_us;  // adaptive config only
};

ShiftResult RunShift(Config config, int size, int phase_scale) {
  PinAdaptiveEnv(config == Config::kAdaptive);
  DatabaseOptions options;
  options.auto_activate_rules = false;
  options.alpha_policy.mode = config == Config::kBtree
                                  ? AlphaMemoryPolicy::Mode::kAllVirtual
                                  : AlphaMemoryPolicy::Mode::kAllStored;
  options.join_hash_indexes = config == Config::kHash;
  Database db(options);

  CheckOk(db.Execute("create r (k = int, pad = int)").status(), "create r");
  CheckOk(db.Execute("create s (k = int, pad = int)").status(), "create s");
  CheckOk(db.Execute("create sink (x = int)").status(), "create sink");
  CheckOk(db.Execute("define index on r (k)").status(), "index r");
  CheckOk(db.Execute("define index on s (k)").status(), "index s");
  CheckOk(db.Execute("define rule shift if r.k = s.k "
                     "then append to sink (x = 1)")
              .status(),
          "define rule");

  HeapRelation* r = db.catalog().GetRelation("r");
  HeapRelation* s = db.catalog().GetRelation("s");
  for (int i = 0; i < size; ++i) {
    CheckOk(db.transitions()
                .Insert(s, Tuple(std::vector<Value>{Value::Int(i),
                                                    Value::Int(0)}))
                .status(),
            "populate s");
  }
  CheckOk(db.rules().ActivateRule("shift"), "activate");

  const HistogramData replans_before = ReplanHistogram();

  // Phase 1: probe-heavy (tokens through r, s static).
  auto probe_tokens = [&](int count) {
    for (int i = 0; i < count; ++i) {
      CheckOk(db.Execute("append r (k = " + std::to_string((i * 37) % size) +
                         ", pad = 0)")
                  .status(),
              "probe token");
      if ((i + 1) % 16 == 0) {
        for (TupleId tid : r->AllTupleIds()) {
          CheckOk(db.transitions().Delete(r, tid), "probe cleanup");
        }
      }
    }
  };
  probe_tokens(96);  // adaptive converges scan -> hash here
  const int phase1_tokens = 32 * phase_scale;
  Timer timer;
  probe_tokens(phase1_tokens);
  ShiftResult out;
  out.phase1_token_ms = timer.ElapsedMillis() / phase1_tokens;

  // Phase 2: the workload flips to churn through s (appends above the key
  // range so nothing matches, bulk-deleted each round).
  int next_key = size;
  auto churn_round = [&]() {
    std::string block = "do";
    for (int i = 0; i < 32; ++i) {
      block += " append s (k = " + std::to_string(size + (next_key++ % 4096)) +
               ", pad = 0)";
    }
    block += " end";
    CheckOk(db.Execute(block).status(), "shift churn append");
    CheckOk(db.Execute("delete s where s.k >= " + std::to_string(size))
                .status(),
            "shift churn delete");
  };
  for (int i = 0; i < 8; ++i) churn_round();  // adaptive re-plans here
  const int phase2_rounds = 4 * phase_scale;
  timer.Reset();
  for (int i = 0; i < phase2_rounds; ++i) churn_round();
  const double seconds = timer.ElapsedSeconds();
  out.phase2_cmds_per_sec = seconds > 0 ? (2.0 * phase2_rounds) / seconds : 0;

  out.replans = TotalReplans(&db);
  const HistogramData replans_after = ReplanHistogram();
  const uint64_t count = replans_after.count - replans_before.count;
  out.replan_latency_us =
      count > 0 ? static_cast<double>(replans_after.sum - replans_before.sum) /
                      static_cast<double>(count) / 1000.0
                : 0;
  return out;
}

}  // namespace

int main() {
  BenchReporter reporter("adaptive_optimizer");
  const bool smoke = SmokeMode();
  const int trials = smoke ? 1 : 3;
  const std::vector<int> sizes = smoke ? std::vector<int>{200}
                                       : std::vector<int>{100, 1000, 10000};

  std::printf("=== adaptive vs static: probe-heavy join sweep ===\n");
  std::printf("(adaptive starts on the scan shape and must converge)\n");
  std::printf("%-10s %-10s %-16s %-8s\n", "config", "size", "token test(ms)",
              "replans");
  for (int size : sizes) {
    double best_static = 0;
    double adaptive_ms = 0;
    for (Config config : {Config::kScan, Config::kHash, Config::kBtree,
                          Config::kAdaptive}) {
      JoinPoint point = RunJoinPoint(config, size, trials);
      std::printf("%-10s %-10d %-16.4f %-8llu\n", ConfigName(config), size,
                  point.token_ms,
                  static_cast<unsigned long long>(point.replans));
      reporter.AddResult("join_" + std::string(ConfigName(config)) + "_n" +
                             std::to_string(size) + "_token_ms",
                         point.token_ms);
      if (config == Config::kAdaptive) {
        adaptive_ms = point.token_ms;
      } else if (best_static == 0 || point.token_ms < best_static) {
        best_static = point.token_ms;
      }
    }
    std::printf("  -> adaptive %.4f ms vs best static %.4f ms\n", adaptive_ms,
                best_static);
  }

  std::printf("\n=== adaptive vs static: bulk churn sweep ===\n");
  std::printf("(best shape is a per-memory split only adaptation reaches)\n");
  std::printf("%-10s %-18s %-8s\n", "config", "commands/sec", "replans");
  const int churn_commands = smoke ? 4 : 32;
  for (Config config :
       {Config::kHash, Config::kBtree, Config::kAdaptive}) {
    // The whole scenario repeats per trial (adaptation is one-way within a
    // database, so repetition means fresh engines) and the median tames the
    // run-to-run noise of wall-clock throughput.
    uint64_t replans = 0;
    std::vector<double> samples;
    for (int t = 0; t < trials; ++t) {
      samples.push_back(RunChurnPoint(config, churn_commands, &replans));
    }
    const double cps = Median(&samples);
    std::printf("%-10s %-18.1f %-8llu\n", ConfigName(config), cps,
                static_cast<unsigned long long>(replans));
    reporter.AddResult(
        "churn_" + std::string(ConfigName(config)) + "_cmds_per_sec", cps);
  }

  std::printf("\n=== mid-run workload shift ===\n");
  std::printf("(probe-heavy, then churn-heavy; statics keep their installed "
              "shape)\n");
  std::printf("%-10s %-20s %-20s %-8s %-16s\n", "config", "p1 token(ms)",
              "p2 commands/sec", "replans", "replan lat(us)");
  const int shift_size = smoke ? 200 : 4000;
  const int phase_scale = smoke ? 1 : 4;
  for (Config config : {Config::kScan, Config::kHash, Config::kBtree,
                        Config::kAdaptive}) {
    std::vector<double> p1_samples, p2_samples;
    ShiftResult result{};
    for (int t = 0; t < trials; ++t) {
      result = RunShift(config, shift_size, phase_scale);
      p1_samples.push_back(result.phase1_token_ms);
      p2_samples.push_back(result.phase2_cmds_per_sec);
    }
    result.phase1_token_ms = Median(&p1_samples);
    result.phase2_cmds_per_sec = Median(&p2_samples);
    std::printf("%-10s %-20.4f %-20.1f %-8llu %-16.1f\n", ConfigName(config),
                result.phase1_token_ms, result.phase2_cmds_per_sec,
                static_cast<unsigned long long>(result.replans),
                result.replan_latency_us);
    const std::string prefix = "shift_" + std::string(ConfigName(config));
    reporter.AddResult(prefix + "_phase1_token_ms", result.phase1_token_ms);
    reporter.AddResult(prefix + "_phase2_cmds_per_sec",
                       result.phase2_cmds_per_sec);
    if (config == Config::kAdaptive) {
      reporter.AddResult("shift_replans",
                         static_cast<double>(result.replans));
      reporter.AddResult("shift_replan_latency_us", result.replan_latency_us);
    }
  }
  return 0;
}
