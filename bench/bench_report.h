#ifndef ARIEL_BENCH_BENCH_REPORT_H_
#define ARIEL_BENCH_BENCH_REPORT_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace ariel::bench {

/// True when the harness should run a minimal workload (one small
/// configuration, one trial): set ARIEL_BENCH_SMOKE=1. CI uses this to
/// verify the benches run and report, not to collect numbers.
inline bool SmokeMode() {
  const char* v = std::getenv("ARIEL_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Snapshots the engine metrics registry on construction and writes
/// BENCH_<name>.json on destruction with the bench's wall time and the
/// counter deltas it caused. Output directory: $ARIEL_BENCH_JSON_DIR if
/// set, else the working directory.
///
///   int main() {
///     ariel::bench::BenchReporter reporter("fig9_one_var_rules");
///     ... run and print the bench as usual ...
///   }
class BenchReporter {
 public:
  explicit BenchReporter(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    for (const auto& [counter_name, value] :
         Metrics().registry.Counters()) {
      baseline_[counter_name] = value;
    }
  }

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Records a bench-specific headline number (throughput, a percentile…)
  /// emitted under the report's "results" object, e.g.
  /// AddResult("c8_commands_per_sec", 12345.6).
  void AddResult(const std::string& key, double value) {
    results_.emplace_back(key, value);
  }

  ~BenchReporter() {
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string path = OutputPath();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    std::fprintf(f, "  \"schema_version\": 1,\n");
    std::fprintf(f, "  \"wall_time_seconds\": %.6f,\n", wall_seconds);
    std::fprintf(f, "  \"results\": {\n");
    for (size_t i = 0; i < results_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.6f%s\n", results_[i].first.c_str(),
                   results_[i].second, i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"counters\": {\n");
    auto counters = Metrics().registry.Counters();
    for (size_t i = 0; i < counters.size(); ++i) {
      uint64_t before = 0;
      auto it = baseline_.find(counters[i].first);
      if (it != baseline_.end()) before = it->second;
      std::fprintf(f, "    \"%s\": %llu%s\n", counters[i].first.c_str(),
                   static_cast<unsigned long long>(counters[i].second - before),
                   i + 1 < counters.size() ? "," : "");
    }
    std::fprintf(f, "  },\n  \"histograms\": {\n");
    auto histograms = Metrics().registry.Histograms();
    for (size_t i = 0; i < histograms.size(); ++i) {
      const HistogramData& data = histograms[i].second;
      std::fprintf(
          f, "    \"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.2f}%s\n",
          histograms[i].first.c_str(),
          static_cast<unsigned long long>(data.count),
          static_cast<unsigned long long>(data.sum), data.Mean(),
          i + 1 < histograms.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("bench report written to %s\n", path.c_str());
  }

 private:
  std::string OutputPath() const {
    std::string dir;
    const char* env = std::getenv("ARIEL_BENCH_JSON_DIR");
    if (env != nullptr && env[0] != '\0') {
      dir = env;
      if (dir.back() != '/') dir += '/';
    }
    return dir + "BENCH_" + name_ + ".json";
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, uint64_t> baseline_;
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace ariel::bench

#endif  // ARIEL_BENCH_BENCH_REPORT_H_
