// Ablation for §5.3: the cost of the always-reoptimize strategy. Ariel
// re-plans every rule-action command at each firing; the alternative the
// paper sketches (pre-optimized stored plans) would save exactly the
// planning share of the act phase. This bench separates plan construction
// from plan execution for action-shaped commands of increasing join depth,
// quantifying the ceiling a plan cache could gain.

#include "bench/bench_report.h"
#include <string>

#include "bench/paper_workload.h"
#include "parser/parser.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

struct Sample {
  double plan_us;     // optimizer time per invocation
  double execute_us;  // full command time per invocation (plan + run)
};

// Tiny helper preventing the compiler from discarding the plan object.
template <typename T>
inline void benchmark_dont_optimize(T& value) {
  asm volatile("" : : "r,m"(&value) : "memory");
}

Sample Measure(Database* db, const std::string& command_text) {
  CommandPtr command = CheckOk(ParseCommand(command_text), "parse");
  const int kReps = 2000;

  Timer timer;
  for (int i = 0; i < kReps; ++i) {
    Plan plan = CheckOk(db->executor().PlanFor(*command), "plan");
    benchmark_dont_optimize(plan);
  }
  Sample sample;
  sample.plan_us = timer.ElapsedMicros() / kReps;

  timer.Reset();
  for (int i = 0; i < kReps; ++i) {
    CheckOk(db->executor().Execute(*command).status(), "execute");
  }
  sample.execute_us = timer.ElapsedMicros() / kReps;
  return sample;
}

/// Fires a rule with a join-bearing action `firings` times and returns the
/// median act-phase time, with or without the stored-plan strategy.
double TimeFirings(bool cache_plans, int firings) {
  DatabaseOptions options;
  options.cache_action_plans = cache_plans;
  Database db(options);
  SetupPaperDatabase(&db);
  CheckOk(db.Execute("define rule cap on append emp "
                     "if emp.sal > 500000 "
                     "then do "
                     "  append to bench_log (name = emp.name) "
                     "  replace emp (sal = 500000.0) "
                     "    where emp.dno = dept.dno and "
                     "          dept.name = \"Sales\" "
                     "  replace emp (sal = 400000.0) "
                     "    where emp.dno = dept.dno and "
                     "          dept.name != \"Sales\" "
                     "end")
              .status(),
          "define rule");

  HeapRelation* emp = db.catalog().GetRelation("emp");
  std::vector<double> samples;
  for (int f = 0; f < firings; ++f) {
    Tuple tuple(std::vector<Value>{Value::String("probe"), Value::Int(30),
                                   Value::Float(900000.0),
                                   Value::Int(f % 7 + 1), Value::Int(1)});
    CheckOk(db.transitions().Insert(emp, std::move(tuple)).status(),
            "probe");
    Timer timer;
    CheckOk(db.monitor().RunCycle(), "fire");
    samples.push_back(timer.ElapsedMicros());
    for (TupleId tid : emp->AllTupleIds()) {
      const Tuple* t = emp->Get(tid);
      if (t != nullptr && t->at(0) == Value::String("probe")) {
        CheckOk(db.transitions().Delete(emp, tid), "cleanup");
      }
    }
  }
  return Median(&samples);
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("plan_caching");
  using namespace ariel;
  using namespace ariel::bench;

  Database db;
  SetupPaperDatabase(&db);

  struct Case {
    const char* label;
    const char* command;
  };
  const Case cases[] = {
      {"1 variable",
       "retrieve (emp.name) where 10000 < emp.sal and emp.sal <= 11000"},
      {"2 variables",
       "retrieve (emp.name) where 10000 < emp.sal and emp.sal <= 11000 and "
       "emp.dno = dept.dno"},
      {"3 variables",
       "retrieve (emp.name) where 10000 < emp.sal and emp.sal <= 11000 and "
       "emp.dno = dept.dno and emp.jno = job.jno"},
  };

  std::printf("=== Ablation: always-reoptimize vs plan caching (§5.3) ===\n");
  std::printf("action-shaped commands; planning share = ceiling a stored-"
              "plan strategy could save\n\n");
  std::printf("%-14s %-14s %-18s %-16s\n", "action shape", "plan (us)",
              "plan+execute (us)", "planning share");
  for (const Case& c : cases) {
    Sample s = Measure(&db, c.command);
    std::printf("%-14s %-14.2f %-18.2f %5.1f%%\n", c.label, s.plan_us,
                s.execute_us, 100.0 * s.plan_us / s.execute_us);
  }

  std::printf("\n--- end-to-end: firing a 3-command rule action 200x ---\n");
  double reopt = TimeFirings(/*cache_plans=*/false, 200);
  double cached = TimeFirings(/*cache_plans=*/true, 200);
  std::printf("%-22s %-14s\n", "strategy", "act phase (us)");
  std::printf("%-22s %-14.2f\n", "always-reoptimize", reopt);
  std::printf("%-22s %-14.2f\n", "stored plans", cached);
  std::printf("(stored plans are invalidated by catalog-version changes;\n"
              " see §5.3 for the dependency-maintenance trade-off)\n");
  return 0;
}
