// Bulk-transition throughput: the batched Δ-set pipeline against per-token
// propagation. One transition appends N tuples (then bulk-replaces N/2 of
// them: cases 1-4 traffic, two tokens per replace) into a relation watched
// by eight rules — two O(1) hash equijoins, four band predicates that force
// a full scan of the 128-row dept memory per token, and two hash probes
// with a residual inequality. Per-token per-rule join work therefore
// dominates, which is the regime the parallel match stage targets: rules
// own disjoint memories, so the per-rule tasks fan out across the pool
// while staged P-node deltas merge back in serial order.
//
// Output: tokens/second per {size × mode}, where mode is per-token (serial)
// or batch with 0/1/2/4/8 match threads; batch rows also report flushes,
// match tasks, and steals. Speedup is vs the serial row of the same size.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/paper_workload.h"
#include "util/timer.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

constexpr int kDeptRows = 128;
constexpr int kSalDomain = kDeptRows * 100;
constexpr size_t kBatchTokens = 512;

struct SweepRow {
  int size = 0;
  bool batch = false;
  size_t threads = 0;
  double seconds = 0;
  uint64_t tokens = 0;
  uint64_t flushes = 0;
  uint64_t tasks = 0;
  uint64_t steals = 0;

  double TokensPerSecond() const {
    return seconds > 0 ? static_cast<double>(tokens) / seconds : 0;
  }
};

SweepRow RunPoint(int size, bool batch, size_t threads) {
  DatabaseOptions options;
  options.auto_activate_rules = false;
  options.alpha_policy.mode = AlphaMemoryPolicy::Mode::kAllStored;
  options.batch_tokens = batch ? kBatchTokens : 0;
  options.match_threads = batch ? threads : 0;
  Database db(options);

  CheckOk(db.Execute("create emp (sal = int, dno = int)").status(),
          "create emp");
  CheckOk(db.Execute("create dept (dno = int, lo = int, hi = int, "
                     "budget = int)")
              .status(),
          "create dept");
  CheckOk(db.Execute("create sink (x = int)").status(), "create sink");

  // Two hash equijoins (1 match), four band scans (the [lo, hi) bands cover
  // a quarter of the sal domain, so ~25% of tokens match one dept row but
  // every token scans all of them), two hash probes with residuals.
  const std::vector<std::string> conds = {
      "emp.dno = dept.dno",
      "emp.dno = dept.dno and emp.sal >= 0",
      "emp.sal >= dept.lo and emp.sal < dept.hi",
      "emp.sal + 10 >= dept.lo and emp.sal + 10 < dept.hi",
      "emp.sal + 25 >= dept.lo and emp.sal + 25 < dept.hi",
      "emp.sal + 40 >= dept.lo and emp.sal + 40 < dept.hi",
      "emp.dno = dept.dno and emp.sal > dept.budget",
      "emp.dno = dept.dno and emp.sal < dept.budget + 100",
  };
  for (size_t i = 0; i < conds.size(); ++i) {
    const std::string name = "r" + std::to_string(i);
    CheckOk(db.Execute("define rule " + name + " if " + conds[i] +
                       " then append to sink (x = 1)")
                .status(),
            "define rule");
  }

  HeapRelation* emp = db.catalog().GetRelation("emp");
  HeapRelation* dept = db.catalog().GetRelation("dept");
  for (int d = 0; d < kDeptRows; ++d) {
    CheckOk(db.transitions()
                .Insert(dept, Tuple(std::vector<Value>{
                                  Value::Int(d), Value::Int(d * 100),
                                  Value::Int(d * 100 + 25),
                                  Value::Int((d * 37) % kSalDomain)}))
                .status(),
            "populate dept");
  }
  for (size_t i = 0; i < conds.size(); ++i) {
    CheckOk(db.rules().ActivateRule("r" + std::to_string(i)), "activate");
  }

  const uint64_t tokens_before = CounterValue("tokens_emitted");
  const uint64_t flushes_before = CounterValue("batch_flushes");
  const uint64_t tasks_before = CounterValue("match_tasks");
  const uint64_t steals_before = CounterValue("match_steal_count");

  Timer timer;
  // Append phase: one transition, N tokens.
  db.transitions().BeginTransition();
  for (int i = 0; i < size; ++i) {
    CheckOk(db.transitions()
                .Insert(emp, Tuple(std::vector<Value>{
                                 Value::Int((i * 97) % kSalDomain),
                                 Value::Int(i % kDeptRows)}))
                .status(),
            "append emp");
  }
  CheckOk(db.transitions().EndTransition(), "end append transition");

  // Replace phase: one transition, N/2 case-3 modifies (2 tokens each).
  std::vector<TupleId> tids = emp->AllTupleIds();
  db.transitions().BeginTransition();
  for (size_t i = 0; i < tids.size(); i += 2) {
    Tuple next = *emp->Get(tids[i]);
    next.at(0) = Value::Int((next.at(0).int_value() + 13) % kSalDomain);
    CheckOk(db.transitions().Update(emp, tids[i], std::move(next), {"sal"}),
            "replace emp");
  }
  CheckOk(db.transitions().EndTransition(), "end replace transition");

  SweepRow out;
  out.size = size;
  out.batch = batch;
  out.threads = threads;
  out.seconds = timer.ElapsedSeconds();
  out.tokens = CounterValue("tokens_emitted") - tokens_before;
  out.flushes = CounterValue("batch_flushes") - flushes_before;
  out.tasks = CounterValue("match_tasks") - tasks_before;
  out.steals = CounterValue("match_steal_count") - steals_before;
  return out;
}

const char* ModeName(const SweepRow& row) {
  return row.batch ? "batch" : "serial";
}

}  // namespace

int main() {
  BenchReporter reporter("bulk_transitions");
  const bool smoke = SmokeMode();
  const std::vector<int> sizes = smoke
                                     ? std::vector<int>{100}
                                     : std::vector<int>{100, 1000, 10000,
                                                        100000};
  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{0, 2} : std::vector<size_t>{0, 1, 2, 4, 8};

  std::printf("=== bulk transitions: batched Δ-set pipeline vs per-token "
              "===\n");
  std::printf("(8 rules over emp×dept[%d]: 2 hash equijoins, 4 band scans, "
              "2 hash+residual; batch = %zu tokens/flush)\n",
              kDeptRows, kBatchTokens);
  std::printf("%-8s %-8s %-8s %-12s %-12s %-9s %-8s %-8s %-8s %-8s\n",
              "size", "mode", "threads", "wall(s)", "tokens/s", "speedup",
              "tokens", "flushes", "tasks", "steals");
  for (int size : sizes) {
    double serial_tps = 0;
    std::vector<SweepRow> rows;
    rows.push_back(RunPoint(size, /*batch=*/false, /*threads=*/0));
    serial_tps = rows.back().TokensPerSecond();
    for (size_t threads : thread_counts) {
      rows.push_back(RunPoint(size, /*batch=*/true, threads));
    }
    for (const SweepRow& row : rows) {
      std::printf(
          "%-8d %-8s %-8zu %-12.4f %-12.0f %-9.2f %-8llu %-8llu %-8llu "
          "%-8llu\n",
          row.size, ModeName(row), row.threads, row.seconds,
          row.TokensPerSecond(),
          serial_tps > 0 ? row.TokensPerSecond() / serial_tps : 0.0,
          static_cast<unsigned long long>(row.tokens),
          static_cast<unsigned long long>(row.flushes),
          static_cast<unsigned long long>(row.tasks),
          static_cast<unsigned long long>(row.steals));
      const std::string key = "n" + std::to_string(row.size) + "_" +
                              ModeName(row) + "_t" +
                              std::to_string(row.threads);
      reporter.AddResult(key + "_tokens_per_sec", row.TokensPerSecond());
    }
  }
  return 0;
}
