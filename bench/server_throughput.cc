// Loopback throughput of the networked front end (ISSUE 7 acceptance):
// N concurrent clients issue synchronous round-trip commands against an
// in-process ariel-server; we report commands/sec and client-observed
// latency percentiles per concurrency level.
//
// Smoke mode (ARIEL_BENCH_SMOKE=1): one configuration, 8 clients — the
// acceptance floor — with a small per-client command count. Full mode
// sweeps {1, 2, 4, 8, 16} clients.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ariel/database.h"
#include "bench/bench_report.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using Clock = std::chrono::steady_clock;

double PercentileMs(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[index];
}

struct RunResult {
  double commands_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

RunResult RunConcurrency(int clients, int commands_per_client) {
  ariel::Database db;
  ariel::server::ServerOptions options;
  options.port = 0;
  ariel::server::ArielServer server(&db, options);
  ariel::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return {};
  }
  ariel::Status run_status;
  std::thread server_thread([&] { run_status = server.Run(); });

  {
    auto setup =
        ariel::server::ClientConnection::Connect("127.0.0.1", server.port());
    if (setup.ok()) {
      ARIEL_IGNORE_STATUS(
          setup->RoundTrip("create emp (name = string, sal = float)")
              .status());
      ARIEL_IGNORE_STATUS(
          setup
              ->RoundTrip("define rule watch\nif emp.sal > 1000000.0\n"
                          "then delete emp")
              .status());
    }
  }

  std::vector<std::vector<double>> latencies_ms(
      static_cast<size_t>(clients));
  const auto begin = Clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      auto client = ariel::server::ClientConnection::Connect("127.0.0.1",
                                                             server.port());
      if (!client.ok()) return;
      auto& mine = latencies_ms[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(commands_per_client));
      for (int i = 0; i < commands_per_client; ++i) {
        const auto t0 = Clock::now();
        auto response =
            client->RoundTrip("append emp (name=\"w\", sal=50.0)");
        const auto t1 = Clock::now();
        if (!response.ok() || response->kind != ariel::server::kRespOk) {
          return;
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - begin).count();
  server.RequestShutdown();
  server_thread.join();
  if (!run_status.ok()) {
    std::fprintf(stderr, "server run failed: %s\n",
                 run_status.ToString().c_str());
  }

  std::vector<double> all_ms;
  for (const auto& mine : latencies_ms) {
    all_ms.insert(all_ms.end(), mine.begin(), mine.end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  RunResult result;
  result.commands_per_sec =
      elapsed > 0 ? static_cast<double>(all_ms.size()) / elapsed : 0.0;
  result.p50_ms = PercentileMs(all_ms, 0.50);
  result.p99_ms = PercentileMs(all_ms, 0.99);
  std::printf(
      "clients=%2d  commands=%6zu  throughput=%9.0f cmd/s  "
      "p50=%7.3f ms  p99=%7.3f ms\n",
      clients, all_ms.size(), result.commands_per_sec, result.p50_ms,
      result.p99_ms);
  return result;
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("server_throughput");
  const bool smoke = ariel::bench::SmokeMode();
  const int commands_per_client = smoke ? 25 : 500;
  std::vector<int> sweep = smoke ? std::vector<int>{8}
                                 : std::vector<int>{1, 2, 4, 8, 16};
  std::printf("server_throughput: loopback, synchronous round trips, "
              "%d commands/client%s\n",
              commands_per_client, smoke ? " (smoke)" : "");
  for (int clients : sweep) {
    RunResult result = RunConcurrency(clients, commands_per_client);
    const std::string prefix = "c" + std::to_string(clients) + "_";
    reporter.AddResult(prefix + "commands_per_sec", result.commands_per_sec);
    reporter.AddResult(prefix + "p50_latency_ms", result.p50_ms);
    reporter.AddResult(prefix + "p99_latency_ms", result.p99_ms);
  }
  return 0;
}
