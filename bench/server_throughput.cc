// Loopback throughput of the networked front end (ISSUE 7 acceptance):
// N concurrent clients issue synchronous round-trip commands against an
// in-process ariel-server; we report commands/sec and client-observed
// latency percentiles per concurrency level.
//
// Read/write mixes (ISSUE 10 acceptance): 100/0, 90/10, and 50/50
// read/write mixes at 8 clients over a pre-populated relation, with
// throughput plus per-class (read vs write) latency percentiles. The
// reader-pool width comes from ARIEL_READ_THREADS (0 = the serialized
// baseline), so an A/B is two runs of the same binary.
//
// Smoke mode (ARIEL_BENCH_SMOKE=1): one configuration, 8 clients — the
// acceptance floor — with a small per-client command count. Full mode
// sweeps {1, 2, 4, 8, 16} clients.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "ariel/database.h"
#include "bench/bench_report.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using Clock = std::chrono::steady_clock;

double PercentileMs(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[index];
}

struct RunResult {
  double commands_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

RunResult RunConcurrency(int clients, int commands_per_client) {
  ariel::Database db;
  ariel::server::ServerOptions options;
  options.port = 0;
  ariel::server::ArielServer server(&db, options);
  ariel::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return {};
  }
  ariel::Status run_status;
  std::thread server_thread([&] { run_status = server.Run(); });

  {
    auto setup =
        ariel::server::ClientConnection::Connect("127.0.0.1", server.port());
    if (setup.ok()) {
      ARIEL_IGNORE_STATUS(
          setup->RoundTrip("create emp (name = string, sal = float)")
              .status());
      ARIEL_IGNORE_STATUS(
          setup
              ->RoundTrip("define rule watch\nif emp.sal > 1000000.0\n"
                          "then delete emp")
              .status());
    }
  }

  std::vector<std::vector<double>> latencies_ms(
      static_cast<size_t>(clients));
  const auto begin = Clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      auto client = ariel::server::ClientConnection::Connect("127.0.0.1",
                                                             server.port());
      if (!client.ok()) return;
      auto& mine = latencies_ms[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(commands_per_client));
      for (int i = 0; i < commands_per_client; ++i) {
        const auto t0 = Clock::now();
        auto response =
            client->RoundTrip("append emp (name=\"w\", sal=50.0)");
        const auto t1 = Clock::now();
        if (!response.ok() || response->kind != ariel::server::kRespOk) {
          return;
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - begin).count();
  server.RequestShutdown();
  server_thread.join();
  if (!run_status.ok()) {
    std::fprintf(stderr, "server run failed: %s\n",
                 run_status.ToString().c_str());
  }

  std::vector<double> all_ms;
  for (const auto& mine : latencies_ms) {
    all_ms.insert(all_ms.end(), mine.begin(), mine.end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  RunResult result;
  result.commands_per_sec =
      elapsed > 0 ? static_cast<double>(all_ms.size()) / elapsed : 0.0;
  result.p50_ms = PercentileMs(all_ms, 0.50);
  result.p99_ms = PercentileMs(all_ms, 0.99);
  std::printf(
      "clients=%2d  commands=%6zu  throughput=%9.0f cmd/s  "
      "p50=%7.3f ms  p99=%7.3f ms\n",
      clients, all_ms.size(), result.commands_per_sec, result.p50_ms,
      result.p99_ms);
  return result;
}

struct MixResult {
  double commands_per_sec = 0.0;
  double read_p50_ms = 0.0;
  double read_p99_ms = 0.0;
  double write_p50_ms = 0.0;
  double write_p99_ms = 0.0;
};

// Runs a deterministic read/write mix: client command i is a write iff
// i % 10 < writes_per_10, so every client (and every run) issues the same
// sequence. Reads are selective retrieves over a pre-populated 1000-row
// relation; writes are appends behind the same never-firing rule as the
// throughput sweep.
MixResult RunMix(int clients, int commands_per_client, int writes_per_10,
                 const char* tag) {
  ariel::Database db;
  ariel::server::ServerOptions options;
  options.port = 0;
  ariel::server::ArielServer server(&db, options);
  ariel::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return {};
  }
  ariel::Status run_status;
  std::thread server_thread([&] { run_status = server.Run(); });

  {
    auto setup =
        ariel::server::ClientConnection::Connect("127.0.0.1", server.port());
    if (setup.ok()) {
      ARIEL_IGNORE_STATUS(
          setup->RoundTrip("create emp (name = string, sal = float)")
              .status());
      ARIEL_IGNORE_STATUS(
          setup
              ->RoundTrip("define rule watch\nif emp.sal > 1000000.0\n"
                          "then delete emp")
              .status());
      for (int i = 0; i < 1000; ++i) {
        ARIEL_IGNORE_STATUS(
            setup
                ->RoundTrip("append emp (name=\"e" + std::to_string(i) +
                            "\", sal=" + std::to_string(i) + ".0)")
                .status());
      }
    }
  }

  std::vector<std::vector<double>> read_ms(static_cast<size_t>(clients));
  std::vector<std::vector<double>> write_ms(static_cast<size_t>(clients));
  const auto begin = Clock::now();
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      auto client = ariel::server::ClientConnection::Connect("127.0.0.1",
                                                             server.port());
      if (!client.ok()) return;
      auto& reads = read_ms[static_cast<size_t>(c)];
      auto& writes = write_ms[static_cast<size_t>(c)];
      for (int i = 0; i < commands_per_client; ++i) {
        const bool is_write = i % 10 < writes_per_10;
        // Rotate the read predicate so reads touch different rows.
        const std::string command =
            is_write
                ? "append emp (name=\"w\", sal=50.0)"
                : "retrieve (emp.name, emp.sal) where emp.sal = " +
                      std::to_string((i * 37 + c * 101) % 1000) + ".0";
        const auto t0 = Clock::now();
        auto response = client->RoundTrip(command);
        const auto t1 = Clock::now();
        if (!response.ok() || response->kind != ariel::server::kRespOk) {
          return;
        }
        (is_write ? writes : reads)
            .push_back(
                std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - begin).count();
  server.RequestShutdown();
  server_thread.join();
  if (!run_status.ok()) {
    std::fprintf(stderr, "server run failed: %s\n",
                 run_status.ToString().c_str());
  }

  std::vector<double> all_reads;
  std::vector<double> all_writes;
  for (int c = 0; c < clients; ++c) {
    const auto index = static_cast<size_t>(c);
    all_reads.insert(all_reads.end(), read_ms[index].begin(),
                     read_ms[index].end());
    all_writes.insert(all_writes.end(), write_ms[index].begin(),
                      write_ms[index].end());
  }
  std::sort(all_reads.begin(), all_reads.end());
  std::sort(all_writes.begin(), all_writes.end());
  const size_t total = all_reads.size() + all_writes.size();
  MixResult result;
  result.commands_per_sec =
      elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0;
  result.read_p50_ms = PercentileMs(all_reads, 0.50);
  result.read_p99_ms = PercentileMs(all_reads, 0.99);
  result.write_p50_ms = PercentileMs(all_writes, 0.50);
  result.write_p99_ms = PercentileMs(all_writes, 0.99);
  std::printf(
      "%-9s clients=%2d  commands=%6zu  throughput=%9.0f cmd/s  "
      "read p50=%7.3f p99=%7.3f ms  write p50=%7.3f p99=%7.3f ms\n",
      tag, clients, total, result.commands_per_sec, result.read_p50_ms,
      result.read_p99_ms, result.write_p50_ms, result.write_p99_ms);
  return result;
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("server_throughput");
  const bool smoke = ariel::bench::SmokeMode();
  const int commands_per_client = smoke ? 25 : 500;
  std::vector<int> sweep = smoke ? std::vector<int>{8}
                                 : std::vector<int>{1, 2, 4, 8, 16};
  std::printf("server_throughput: loopback, synchronous round trips, "
              "%d commands/client%s\n",
              commands_per_client, smoke ? " (smoke)" : "");
  for (int clients : sweep) {
    RunResult result = RunConcurrency(clients, commands_per_client);
    const std::string prefix = "c" + std::to_string(clients) + "_";
    reporter.AddResult(prefix + "commands_per_sec", result.commands_per_sec);
    reporter.AddResult(prefix + "p50_latency_ms", result.p50_ms);
    reporter.AddResult(prefix + "p99_latency_ms", result.p99_ms);
  }

  // Read/write mixes at the 8-client acceptance point. The reader-pool
  // width is whatever ARIEL_READ_THREADS says (the Database constructor
  // reads it), so serialized-vs-concurrent is an env-only A/B.
  const int mix_commands = smoke ? 40 : 400;
  struct Mix {
    int writes_per_10;
    const char* tag;
  };
  const Mix mixes[] = {{0, "mix100_0"}, {1, "mix90_10"}, {5, "mix50_50"}};
  std::printf("read/write mixes: 8 clients, %d commands/client, "
              "1000-row emp, ARIEL_READ_THREADS=%s\n",
              mix_commands,
              std::getenv("ARIEL_READ_THREADS") != nullptr
                  ? std::getenv("ARIEL_READ_THREADS")
                  : "(unset)");
  for (const Mix& mix : mixes) {
    MixResult result = RunMix(8, mix_commands, mix.writes_per_10, mix.tag);
    const std::string prefix = std::string(mix.tag) + "_c8_";
    reporter.AddResult(prefix + "commands_per_sec", result.commands_per_sec);
    reporter.AddResult(prefix + "read_p50_ms", result.read_p50_ms);
    reporter.AddResult(prefix + "read_p99_ms", result.read_p99_ms);
    if (mix.writes_per_10 > 0) {
      reporter.AddResult(prefix + "write_p50_ms", result.write_p50_ms);
      reporter.AddResult(prefix + "write_p99_ms", result.write_p99_ms);
    }
  }
  return 0;
}
