// Ablation for §2.2.1: do…end blocks versus per-command transitions.
// Blocks pay Δ-set bookkeeping (the paper: "use of blocks does incur some
// performance overhead") but collapse a sequence of physical updates to one
// logical event, suppressing intermediate rule wake-ups.
//
// Workload: repeatedly raise one employee's salary k times, with an
// on-replace audit rule active. Per-command: the rule fires after every
// update. Block: the k updates form one transition, one logical modify,
// one firing.

#include "bench/bench_report.h"
#include <string>

#include "bench/paper_workload.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

struct Sample {
  double seconds;
  uint64_t tokens;
  uint64_t firings;
};

Sample Run(bool use_block, int updates_per_round, int rounds) {
  Database db;
  SetupPaperDatabase(&db);
  CheckOk(db.Execute("create audit (name = string, sal = float)").status(),
          "create audit");
  CheckOk(db.Execute("define rule audit_raises on replace emp (sal) "
                     "then append to audit (name = emp.name, sal = emp.sal)")
              .status(),
          "define rule");

  uint64_t tokens_before = db.transitions().tokens_emitted();
  uint64_t fired_before = db.monitor().rules_fired();
  Timer timer;
  for (int r = 0; r < rounds; ++r) {
    std::string script;
    if (use_block) script += "do\n";
    for (int u = 0; u < updates_per_round; ++u) {
      script += "replace emp (sal = emp.sal + 1.0) where "
                "emp.name = \"emp0\"\n";
    }
    if (use_block) script += "end";
    CheckOk(db.Execute(script).status(), "updates");
  }
  Sample sample;
  sample.seconds = timer.ElapsedSeconds();
  sample.tokens = db.transitions().tokens_emitted() - tokens_before;
  sample.firings = db.monitor().rules_fired() - fired_before;
  return sample;
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("transition_blocks");
  std::printf("=== Ablation: do…end blocks vs per-command transitions ===\n");
  std::printf("k salary updates to one employee per round, on-replace audit "
              "rule active (20 rounds)\n\n");
  std::printf("%-6s %-14s %-12s %-10s %-10s\n", "k", "mode", "time(s)",
              "tokens", "firings");
  for (int k : {1, 5, 20}) {
    for (bool block : {false, true}) {
      Sample s = Run(block, k, 20);
      std::printf("%-6d %-14s %-12.4f %-10llu %-10llu\n", k,
                  block ? "block" : "per-command", s.seconds,
                  static_cast<unsigned long long>(s.tokens),
                  static_cast<unsigned long long>(s.firings));
    }
  }
  std::printf("\nExpected shape: blocks emit ~the same token count (each\n"
              "update still produces Δ−/Δ+) but fire the audit rule once\n"
              "per block instead of once per command.\n");
  return 0;
}
