// Ablation: TREAT (the paper's choice, §4.2/§7) versus classic Rete with
// β-memories (the §8 combined-network direction), on a three-variable chain
// rule emp ⋈ dept ⋈ job.
//
// The classic trade-off this quantifies:
//   - tokens arriving at the *last* α of the chain: Rete probes the stored
//     β partials; TREAT re-joins the whole prefix,
//   - deletions: TREAT touches only the α-memory and the conflict set;
//     Rete must also shed partials from every β level,
//   - memory: Rete pays for materialized β chains.

#include "bench/bench_report.h"
#include <string>

#include "bench/paper_workload.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

struct Sample {
  double first_alpha_us;  // insert into emp (head of the chain)
  double last_alpha_us;   // insert into job (tail of the chain)
  double delete_us;       // delete an emp tuple
  size_t beta_bytes;
};

Sample Run(JoinBackend backend, int emp_size) {
  DatabaseOptions options;
  options.join_backend = backend;
  options.alpha_policy.mode = AlphaMemoryPolicy::Mode::kAllStored;
  Database db(options);

  CheckOk(db.Execute("create emp (name = string, sal = float, dno = int, "
                     "jno = int)")
              .status(),
          "create emp");
  CheckOk(db.Execute("create dept (dno = int, name = string)").status(),
          "create dept");
  CheckOk(db.Execute("create job (jno = int, title = string)").status(),
          "create job");
  CheckOk(db.Execute("create bench_log (name = string)").status(), "create");

  for (int d = 0; d < 10; ++d) {
    CheckOk(db.Execute("append dept (dno=" + std::to_string(d) +
                       ", name=\"D" + std::to_string(d) + "\")")
                .status(),
            "dept");
  }
  for (int j = 0; j < 10; ++j) {
    CheckOk(db.Execute("append job (jno=" + std::to_string(j) +
                       ", title=\"T\")")
                .status(),
            "job");
  }
  HeapRelation* emp = db.catalog().GetRelation("emp");
  for (int e = 0; e < emp_size; ++e) {
    Tuple t(std::vector<Value>{Value::String("e" + std::to_string(e)),
                               Value::Float(1000.0 + e), Value::Int(e % 10),
                               Value::Int(e % 10)});
    CheckOk(emp->Insert(std::move(t)).status(), "emp");
  }

  // The dept selection makes the prefix join emp ⋈ dept selective (10% of
  // employees), so Rete's β_1 is 10x smaller than the emp memory TREAT
  // re-joins for every token arriving at the tail of the chain.
  CheckOk(db.Execute("define rule chain "
                     "if emp.sal > 0 and emp.dno = dept.dno and "
                     "dept.name = \"D0\" and emp.jno = job.jno "
                     "then append to bench_log (name = emp.name)")
              .status(),
          "define rule");

  Sample sample;
  const Rule* rule = db.rules().GetRule("chain");
  sample.beta_bytes = rule->network->BetaFootprintBytes();

  HeapRelation* job = db.catalog().GetRelation("job");
  const int kTokens = 40;

  Timer timer;
  for (int t = 0; t < kTokens; ++t) {
    Tuple tuple(std::vector<Value>{Value::String("probe"),
                                   Value::Float(5.0), Value::Int(t % 10),
                                   Value::Int(t % 10)});
    CheckOk(db.transitions().Insert(emp, std::move(tuple)).status(),
            "emp token");
  }
  sample.first_alpha_us = timer.ElapsedMicros() / kTokens;

  timer.Reset();
  for (int t = 0; t < kTokens; ++t) {
    Tuple tuple(std::vector<Value>{Value::Int(t % 10),
                                   Value::String("probe")});
    CheckOk(db.transitions().Insert(job, std::move(tuple)).status(),
            "job token");
  }
  sample.last_alpha_us = timer.ElapsedMicros() / kTokens;

  // Deletion cost: remove the emp probes inserted above.
  std::vector<TupleId> victims;
  emp->ForEach([&](TupleId tid, const Tuple& t) {
    if (t.at(0) == Value::String("probe")) victims.push_back(tid);
  });
  timer.Reset();
  for (TupleId tid : victims) {
    CheckOk(db.transitions().Delete(emp, tid), "delete token");
  }
  sample.delete_us = timer.ElapsedMicros() / victims.size();
  return sample;
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("treat_vs_rete");
  std::printf("=== Ablation: TREAT vs Rete join networks ===\n");
  std::printf("chain rule emp ⋈ dept ⋈ job; 10 depts, 10 jobs\n\n");
  std::printf("%-10s %-8s %-16s %-16s %-14s %-12s\n", "emp size", "backend",
              "emp token (us)", "job token (us)", "delete (us)",
              "beta bytes");
  for (int emp_size : {1000, 5000, 20000}) {
    for (auto [backend, name] : {std::pair{JoinBackend::kTreat, "treat"},
                                 std::pair{JoinBackend::kRete, "rete"}}) {
      Sample s = Run(backend, emp_size);
      std::printf("%-10d %-8s %-16.2f %-16.2f %-14.2f %-12zu\n", emp_size,
                  name, s.first_alpha_us, s.last_alpha_us, s.delete_us,
                  s.beta_bytes);
    }
  }
  std::printf("\nExpected shape: tokens at the tail (job) are much cheaper\n"
              "under Rete (β probe vs full prefix re-join); deletions and\n"
              "memory favor TREAT — the trade §4.2 and §7 discuss.\n");
  return 0;
}
