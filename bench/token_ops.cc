// Extension of the §6 token test: the paper times only insert tokens; this
// bench breaks token-processing cost down by operation type. Deletes are
// expected to be cheapest (TREAT: no joins, just α-memory and conflict-set
// removal); replaces cost roughly a delete plus an insert (the −/Δ+ pair),
// plus Δ-set bookkeeping.

#include <string>

#include "bench/bench_report.h"
#include "bench/paper_workload.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

struct Sample {
  double insert_us;
  double replace_us;
  double delete_us;
};

Sample Run(int rule_type, int num_rules) {
  DatabaseOptions options;
  options.auto_activate_rules = false;
  Database db(options);
  SetupPaperDatabase(&db);
  for (int i = 0; i < num_rules; ++i) {
    CheckOk(db.Execute(PaperRuleText(rule_type, i)).status(), "define");
    CheckOk(db.rules().ActivateRule("bench_rule_" + std::to_string(rule_type) +
                                    "_" + std::to_string(i)),
            "activate");
  }

  HeapRelation* emp = db.catalog().GetRelation("emp");
  const int kTokens = 200;
  Sample sample;

  // Inserts.
  std::vector<TupleId> probes;
  Timer timer;
  for (int t = 0; t < kTokens; ++t) {
    Tuple tuple(std::vector<Value>{Value::String("probe"), Value::Int(30),
                                   Value::Float(10500.0 + (t % 20) * 1000),
                                   Value::Int(t % 7 + 1), Value::Int(1)});
    probes.push_back(
        CheckOk(db.transitions().Insert(emp, std::move(tuple)), "insert"));
  }
  sample.insert_us = timer.ElapsedMicros() / kTokens;

  // Replaces (each probe's salary moves to a different rule interval).
  timer.Reset();
  for (size_t t = 0; t < probes.size(); ++t) {
    Tuple next = *emp->Get(probes[t]);
    next.at(2) = Value::Float(11500.0 + (t % 20) * 1000);
    CheckOk(db.transitions().Update(emp, probes[t], std::move(next), {"sal"}),
            "replace");
  }
  sample.replace_us = timer.ElapsedMicros() / kTokens;

  // Deletes.
  timer.Reset();
  for (TupleId tid : probes) {
    CheckOk(db.transitions().Delete(emp, tid), "delete");
  }
  sample.delete_us = timer.ElapsedMicros() / kTokens;
  return sample;
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("token_ops");
  const bool smoke = ariel::bench::SmokeMode();
  const int max_rule_type = smoke ? 1 : 3;
  const int num_rules = smoke ? 25 : 100;
  std::printf("=== Extension: token-test cost by operation type ===\n");
  std::printf("(the paper's Figures 9-11 time inserts only; %d rules "
              "active)\n\n", num_rules);
  std::printf("%-10s %-14s %-14s %-14s\n", "rule type", "insert (us)",
              "replace (us)", "delete (us)");
  for (int rule_type = 1; rule_type <= max_rule_type; ++rule_type) {
    Sample s = Run(rule_type, num_rules);
    std::printf("%-10d %-14.2f %-14.2f %-14.2f\n", rule_type, s.insert_us,
                s.replace_us, s.delete_us);
    const std::string prefix = "type" + std::to_string(rule_type) + "_";
    reporter.AddResult(prefix + "insert_us", s.insert_us);
    reporter.AddResult(prefix + "replace_us", s.replace_us);
    reporter.AddResult(prefix + "delete_us", s.delete_us);
  }
  std::printf("\nExpected shape: deletes are far cheaper than inserts (no\n"
              "joins — TREAT's deletion advantage); replaces cost about an\n"
              "insert (the Δ+ joins; the paired − retraction is cheap since\n"
              "it only reaches the old value's rules).\n");
  return 0;
}
