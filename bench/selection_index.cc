// Ablation for §4.1 / §6: the selection-predicate index (interval skip
// list) versus brute-force predicate evaluation, scaling the rule count to
// 100k. The paper claims token-test speed "should scale to much larger
// numbers of rules ... because of Ariel's top-level discrimination network";
// related systems without such an index test every rule's predicate per
// token. This bench quantifies both.

#include "bench/bench_report.h"
#include <vector>

#include "bench/paper_workload.h"
#include "exec/expr.h"
#include "parser/parser.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

/// Token test through the full A-TREAT network with N indexed rules.
double IndexedTokenTestMicros(int num_rules) {
  DatabaseOptions options;
  options.auto_activate_rules = false;
  Database db(options);
  SetupPaperDatabase(&db);
  for (int i = 0; i < num_rules; ++i) {
    CheckOk(db.Execute(PaperRuleText(1, i)).status(), "define");
    CheckOk(db.rules().ActivateRule("bench_rule_1_" + std::to_string(i)),
            "activate");
  }
  HeapRelation* emp = db.catalog().GetRelation("emp");
  const int kTokens = 200;
  Timer timer;
  for (int t = 0; t < kTokens; ++t) {
    Tuple tuple(std::vector<Value>{Value::String("probe"), Value::Int(30),
                                   Value::Float(10500.0 + (t % 20) * 1000),
                                   Value::Int(1), Value::Int(1)});
    CheckOk(db.transitions().Insert(emp, std::move(tuple)).status(),
            "insert");
  }
  return timer.ElapsedMicros() / kTokens;
}

/// Brute force: evaluate every rule's compiled selection predicate against
/// the token — what a rule system without a predicate index does.
double BruteForceTokenTestMicros(int num_rules) {
  Database db;
  SetupPaperDatabase(&db);
  const HeapRelation* emp = db.catalog().GetRelation("emp");

  Scope scope;
  scope.Add(VarBinding{"emp", &emp->schema(), false});
  std::vector<CompiledExprPtr> predicates;
  for (int i = 0; i < num_rules; ++i) {
    long c1 = 10000 + static_cast<long>(i) * 1000;
    std::string text = std::to_string(c1) + " < emp.sal and emp.sal <= " +
                       std::to_string(c1 + 1000);
    ExprPtr expr = CheckOk(ParseExpression(text), "parse");
    predicates.push_back(CheckOk(CompileExpr(*expr, scope), "compile"));
  }

  const int kTokens = 200;
  size_t matches = 0;
  Timer timer;
  for (int t = 0; t < kTokens; ++t) {
    Row row(1);
    row.Set(0, Tuple(std::vector<Value>{
                   Value::String("probe"), Value::Int(30),
                   Value::Float(10500.0 + (t % 20) * 1000), Value::Int(1),
                   Value::Int(1)}),
            TupleId{1, 0});
    for (const CompiledExprPtr& pred : predicates) {
      auto r = pred->EvalPredicate(row);
      if (r.ok() && *r) ++matches;
    }
  }
  double micros = timer.ElapsedMicros() / kTokens;
  if (matches == 0) std::printf("(unexpected: no matches)\n");
  return micros;
}

}  // namespace

int main() {
  ariel::bench::BenchReporter reporter("selection_index");
  std::printf("=== Ablation: selection-predicate index vs brute force ===\n");
  std::printf("(per-token condition-testing cost; §4.1, §6 scaling claim)\n");
  std::printf("%-12s %-26s %-26s\n", "no. of rules", "A-TREAT indexed (us)",
              "brute-force predicates (us)");
  for (int n : {100, 1000, 10000, 50000}) {
    double indexed = IndexedTokenTestMicros(n);
    double brute = BruteForceTokenTestMicros(n);
    std::printf("%-12d %-26.2f %-26.2f\n", n, indexed, brute);
  }
  return 0;
}
