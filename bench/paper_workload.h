#ifndef ARIEL_BENCH_PAPER_WORKLOAD_H_
#define ARIEL_BENCH_PAPER_WORKLOAD_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ariel/database.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ariel::bench {

/// Aborts the benchmark with a message when an engine call fails; the
/// harness has no business continuing on broken setup.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok() && !status.IsHalt()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Builds the paper's §6 evaluation database: emp (25 tuples), dept (7),
/// job (5), plus a bench_log relation rule actions append to. Salary values
/// spread over [10000, 34000] so the generated rule predicates
/// (C1 < sal <= C2, shifted by i*1000) have realistic selectivity.
inline void SetupPaperDatabase(Database* db) {
  CheckOk(db->Execute("create emp (name = string, age = int, sal = float, "
                      "dno = int, jno = int)")
              .status(),
          "create emp");
  CheckOk(db->Execute("create dept (dno = int, name = string, "
                      "building = string)")
              .status(),
          "create dept");
  CheckOk(db->Execute("create job (jno = int, title = string, "
                      "paygrade = int, description = string)")
              .status(),
          "create job");
  CheckOk(db->Execute("create bench_log (name = string)").status(),
          "create bench_log");

  static const char* kDeptNames[] = {"Sales", "Toy",  "Shoe", "Candy",
                                     "Book",  "Auto", "Garden"};
  for (int d = 0; d < 7; ++d) {
    std::string cmd = "append dept (dno=" + std::to_string(d + 1) +
                      ", name=\"" + kDeptNames[d] + "\", building=\"B" +
                      std::to_string(d % 3 + 1) + "\")";
    CheckOk(db->Execute(cmd).status(), "populate dept");
  }
  static const char* kTitles[] = {"Clerk", "Engineer", "Manager", "Director",
                                  "Analyst"};
  for (int j = 0; j < 5; ++j) {
    std::string cmd = "append job (jno=" + std::to_string(j + 1) +
                      ", title=\"" + kTitles[j] + "\", paygrade=" +
                      std::to_string(2 * j + 1) + ", description=\"desc\")";
    CheckOk(db->Execute(cmd).status(), "populate job");
  }
  for (int e = 0; e < 25; ++e) {
    std::string cmd = "append emp (name=\"emp" + std::to_string(e) +
                      "\", age=" + std::to_string(25 + e % 30) +
                      ", sal=" + std::to_string(10000 + e * 1000) + ".0" +
                      ", dno=" + std::to_string(e % 7 + 1) +
                      ", jno=" + std::to_string(e % 5 + 1) + ")";
    CheckOk(db->Execute(cmd).status(), "populate emp");
  }
}

/// The §6 rule generator: rule i of each type carries the single-relation
/// predicate C1+i*1000 < emp.sal <= C2+i*1000; type 2 adds the dept join,
/// type 3 adds the job join.
inline std::string PaperRuleText(int rule_type, int i) {
  long c1 = 10000 + static_cast<long>(i) * 1000;
  long c2 = c1 + 1000;
  std::string name = "bench_rule_" + std::to_string(rule_type) + "_" +
                     std::to_string(i);
  std::string cond = std::to_string(c1) + " < emp.sal and emp.sal <= " +
                     std::to_string(c2);
  if (rule_type >= 2) cond += " and emp.dno = dept.dno";
  if (rule_type >= 3) cond += " and emp.jno = job.jno";
  return "define rule " + name + " if " + cond +
         " then append to bench_log (name = emp.name)";
}

/// Hash join indexing knob for A/B runs: ARIEL_JOIN_HASH=0 forces the scan
/// fallback in every join memory, anything else (or unset) leaves the
/// default hash path on. The same binary thus emits both the indexed and
/// the forced-scan BENCH json.
inline bool JoinHashEnabled() {
  const char* v = std::getenv("ARIEL_JOIN_HASH");
  return v == nullptr || v[0] == '\0' || v[0] != '0';
}

/// Median of a sample vector (destructive).
inline double Median(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  size_t n = samples->size();
  if (n == 0) return 0;
  return n % 2 == 1 ? (*samples)[n / 2]
                    : ((*samples)[n / 2 - 1] + (*samples)[n / 2]) / 2;
}

/// One row of a Figure 9/10/11-style table.
struct FigureRow {
  int num_rules;
  double install_seconds;
  double activate_seconds;
  double token_test_ms;
};

/// Runs the full install/activate/token-test protocol of §6 for one rule
/// type and one rule count. Token tests use the storage gateway directly so
/// only condition testing (not rule-action execution) is timed, matching
/// the paper's separation of the two measurements.
inline FigureRow RunFigureProtocol(int rule_type, int num_rules,
                                   const DatabaseOptions& base_options) {
  DatabaseOptions options = base_options;
  options.auto_activate_rules = false;  // time install and activate apart
  Database db(options);
  SetupPaperDatabase(&db);

  FigureRow row;
  row.num_rules = num_rules;

  Timer timer;
  for (int i = 0; i < num_rules; ++i) {
    CheckOk(db.Execute(PaperRuleText(rule_type, i)).status(), "define rule");
  }
  row.install_seconds = timer.ElapsedSeconds();

  timer.Reset();
  for (int i = 0; i < num_rules; ++i) {
    std::string name = "bench_rule_" + std::to_string(rule_type) + "_" +
                       std::to_string(i);
    CheckOk(db.rules().ActivateRule(name), "activate rule");
  }
  row.activate_seconds = timer.ElapsedSeconds();

  // Token test: one insert into emp, propagated through the discrimination
  // network via the gateway (no recognize-act cycle => no action timing).
  HeapRelation* emp = db.catalog().GetRelation("emp");
  const int kTrials = 7;
  const int kTokensPerTrial = 50;
  std::vector<double> samples;
  for (int trial = 0; trial < kTrials; ++trial) {
    timer.Reset();
    for (int t = 0; t < kTokensPerTrial; ++t) {
      Tuple tuple(std::vector<Value>{
          Value::String("probe"), Value::Int(30),
          Value::Float(10500.0 + (t % 5) * 1000),  // hits one rule interval
          Value::Int(t % 7 + 1), Value::Int(t % 5 + 1)});
      CheckOk(db.transitions().Insert(emp, std::move(tuple)).status(),
              "token test insert");
    }
    samples.push_back(timer.ElapsedMillis() / kTokensPerTrial);
    // Remove the probes so the next trial starts from the same state.
    for (TupleId tid : emp->AllTupleIds()) {
      const Tuple* t = emp->Get(tid);
      if (t != nullptr && t->at(0) == Value::String("probe")) {
        CheckOk(db.transitions().Delete(emp, tid), "token test cleanup");
      }
    }
  }
  row.token_test_ms = Median(&samples);
  return row;
}

/// Runs the protocol `trials` times and keeps per-column medians, smoothing
/// allocator and cache noise out of the single-run timings.
inline FigureRow RunFigureProtocolMedian(int rule_type, int num_rules,
                                         const DatabaseOptions& base_options,
                                         int trials = 3) {
  std::vector<double> install, activate, token;
  for (int t = 0; t < trials; ++t) {
    FigureRow row = RunFigureProtocol(rule_type, num_rules, base_options);
    install.push_back(row.install_seconds);
    activate.push_back(row.activate_seconds);
    token.push_back(row.token_test_ms);
  }
  FigureRow row;
  row.num_rules = num_rules;
  row.install_seconds = Median(&install);
  row.activate_seconds = Median(&activate);
  row.token_test_ms = Median(&token);
  return row;
}

/// One row of the relation-size scaling sweep the join figures add on top
/// of the paper tables: the paper fixes dept at 7 and job at 5 tuples,
/// which caps how much an O(1) probe can save; sweeping the joined-relation
/// cardinality shows the probe-vs-scan separation directly.
struct ScalingRow {
  int relation_size;
  double token_test_ms;
  uint64_t join_probes;
  uint64_t join_hash_probes;
  uint64_t join_scan_fallbacks;
};

inline uint64_t CounterValue(const char* name) {
  for (const auto& [n, v] : Metrics().registry.Counters()) {
    if (n == name) return v;
  }
  return 0;
}

/// Token-tests `num_rules` type-2 (or type-3) rules against dept (and job)
/// scaled to `relation_size` tuples. α-memories are forced stored: the
/// adaptive policy would turn the scaled memories virtual, and the point of
/// the sweep is the stored-memory probe path. emp keys spread across the
/// whole scaled key range so bucket sizes stay ~1.
inline ScalingRow RunJoinScalingPoint(int rule_type, int num_rules,
                                      int relation_size, int trials) {
  DatabaseOptions options;
  options.alpha_policy.mode = AlphaMemoryPolicy::Mode::kAllStored;
  options.auto_activate_rules = false;
  options.join_hash_indexes = JoinHashEnabled();
  Database db(options);

  CheckOk(db.Execute("create emp (name = string, age = int, sal = float, "
                     "dno = int, jno = int)")
              .status(),
          "create emp");
  CheckOk(db.Execute("create dept (dno = int, name = string, "
                     "building = string)")
              .status(),
          "create dept");
  CheckOk(db.Execute("create job (jno = int, title = string, "
                     "paygrade = int, description = string)")
              .status(),
          "create job");
  CheckOk(db.Execute("create bench_log (name = string)").status(),
          "create bench_log");

  HeapRelation* dept = db.catalog().GetRelation("dept");
  HeapRelation* job = db.catalog().GetRelation("job");
  HeapRelation* emp = db.catalog().GetRelation("emp");
  for (int d = 0; d < relation_size; ++d) {
    CheckOk(db.transitions()
                .Insert(dept, Tuple(std::vector<Value>{
                                  Value::Int(d + 1),
                                  Value::String("d" + std::to_string(d)),
                                  Value::String("B1")}))
                .status(),
            "populate scaled dept");
  }
  if (rule_type >= 3) {
    for (int j = 0; j < relation_size; ++j) {
      CheckOk(db.transitions()
                  .Insert(job, Tuple(std::vector<Value>{
                                    Value::Int(j + 1), Value::String("t"),
                                    Value::Int(j % 9 + 1),
                                    Value::String("desc")}))
                  .status(),
              "populate scaled job");
    }
  }
  for (int e = 0; e < 25; ++e) {
    CheckOk(db.transitions()
                .Insert(emp, Tuple(std::vector<Value>{
                                  Value::String("emp" + std::to_string(e)),
                                  Value::Int(25 + e % 30),
                                  Value::Float(10000.0 + e * 1000),
                                  Value::Int(e % relation_size + 1),
                                  Value::Int(e % relation_size + 1)}))
                .status(),
            "populate emp");
  }

  for (int i = 0; i < num_rules; ++i) {
    CheckOk(db.Execute(PaperRuleText(rule_type, i)).status(), "define rule");
    std::string name = "bench_rule_" + std::to_string(rule_type) + "_" +
                       std::to_string(i);
    CheckOk(db.rules().ActivateRule(name), "activate rule");
  }

  ScalingRow row;
  row.relation_size = relation_size;
  const uint64_t probes_before = CounterValue("join_probes");
  const uint64_t hash_before = CounterValue("join_hash_probes");
  const uint64_t scans_before = CounterValue("join_scan_fallbacks");

  Timer timer;
  const int kTokensPerTrial = 50;
  std::vector<double> samples;
  for (int trial = 0; trial < trials; ++trial) {
    timer.Reset();
    for (int t = 0; t < kTokensPerTrial; ++t) {
      Tuple tuple(std::vector<Value>{
          Value::String("probe"), Value::Int(30),
          Value::Float(10500.0 + (t % 5) * 1000),
          Value::Int(t * (relation_size / kTokensPerTrial + 1) %
                         relation_size +
                     1),
          Value::Int(t * (relation_size / kTokensPerTrial + 1) %
                         relation_size +
                     1)});
      CheckOk(db.transitions().Insert(emp, std::move(tuple)).status(),
              "token test insert");
    }
    samples.push_back(timer.ElapsedMillis() / kTokensPerTrial);
    for (TupleId tid : emp->AllTupleIds()) {
      const Tuple* t = emp->Get(tid);
      if (t != nullptr && t->at(0) == Value::String("probe")) {
        CheckOk(db.transitions().Delete(emp, tid), "token test cleanup");
      }
    }
  }
  row.token_test_ms = Median(&samples);
  row.join_probes = CounterValue("join_probes") - probes_before;
  row.join_hash_probes = CounterValue("join_hash_probes") - hash_before;
  row.join_scan_fallbacks = CounterValue("join_scan_fallbacks") - scans_before;
  return row;
}

inline void PrintScalingTable(const char* figure,
                              const std::vector<ScalingRow>& rows) {
  std::printf("=== %s: joined-relation scaling (stored memories, %s) ===\n",
              figure, JoinHashEnabled() ? "hash probes" : "forced scan");
  std::printf("%-14s %-16s %-14s %-16s %-16s\n", "relation size",
              "token test(ms)", "join_probes", "join_hash_probes",
              "join_scan_fallbacks");
  for (const ScalingRow& row : rows) {
    std::printf("%-14d %-16.4f %-14llu %-16llu %-16llu\n", row.relation_size,
                row.token_test_ms,
                static_cast<unsigned long long>(row.join_probes),
                static_cast<unsigned long long>(row.join_hash_probes),
                static_cast<unsigned long long>(row.join_scan_fallbacks));
  }
  std::printf("\n");
}

/// Prints a Figure 9/10/11-style table.
inline void PrintFigureTable(const char* figure, const char* description,
                             const std::vector<FigureRow>& rows) {
  std::printf("=== %s: %s ===\n", figure, description);
  std::printf("(paper: Sun SPARCstation 1, ~12 MIPS; this run: modern "
              "hardware — compare shapes, not absolutes)\n");
  std::printf("%-12s %-16s %-16s %-16s\n", "no. of rules", "installation(s)",
              "activation(s)", "token test(ms)");
  for (const FigureRow& row : rows) {
    std::printf("%-12d %-16.4f %-16.4f %-16.4f\n", row.num_rules,
                row.install_seconds, row.activate_seconds, row.token_test_ms);
  }
  std::printf("\n");
}

}  // namespace ariel::bench

#endif  // ARIEL_BENCH_PAPER_WORKLOAD_H_
