// Microbenchmarks for the interval skip list (§4.1 substrate): insert,
// remove and stab throughput as a function of the number of stored
// intervals. Stab cost should grow ~logarithmically plus the answer size.

#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "isl/interval_skip_list.h"
#include "util/random.h"

namespace ariel {
namespace {

void FillList(IntervalSkipList* isl, int64_t n, Random* rng,
              int64_t key_range) {
  for (int64_t i = 0; i < n; ++i) {
    int64_t a = rng->UniformRange(0, key_range);
    int64_t width = rng->UniformRange(1, key_range / 100 + 2);
    isl->Insert(i, Interval::Range(Value::Int(a), false,
                                   Value::Int(a + width), true));
  }
}

void BM_IslStab(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t key_range = n * 10;
  Random rng(42);
  IntervalSkipList isl;
  FillList(&isl, n, &rng, key_range);
  std::vector<int64_t> out;
  int64_t probe = 0;
  for (auto _ : state) {
    out.clear();
    isl.Stab(Value::Int(probe % key_range), &out);
    benchmark::DoNotOptimize(out.data());
    probe += 7919;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IslStab)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IslInsertRemove(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t key_range = n * 10;
  Random rng(42);
  IntervalSkipList isl;
  FillList(&isl, n, &rng, key_range);
  int64_t next_id = n;
  for (auto _ : state) {
    int64_t a = rng.UniformRange(0, key_range);
    isl.Insert(next_id, Interval::Range(Value::Int(a), true,
                                        Value::Int(a + 50), true));
    isl.Remove(next_id);
    ++next_id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IslInsertRemove)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IslStabPoints(benchmark::State& state) {
  // All-points workload: the `attr = const` predicate population typical
  // of equality-heavy rule sets.
  const int64_t n = state.range(0);
  Random rng(7);
  IntervalSkipList isl;
  for (int64_t i = 0; i < n; ++i) {
    isl.Insert(i, Interval::Point(Value::Int(rng.UniformRange(0, n))));
  }
  std::vector<int64_t> out;
  int64_t probe = 0;
  for (auto _ : state) {
    out.clear();
    isl.Stab(Value::Int(probe % n), &out);
    benchmark::DoNotOptimize(out.data());
    probe += 104729;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IslStabPoints)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace ariel

// Hand-rolled BENCHMARK_MAIN so the run is wrapped in a BenchReporter
// scope: the report captures the engine counters the microbenchmarks drive
// (isl_node_visits) alongside wall time.
int main(int argc, char** argv) {
  ariel::bench::BenchReporter reporter("isl_micro");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
