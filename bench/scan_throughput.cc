// Columnar vs row scan throughput: the same retrieve over a single
// relation, swept across table size (10^2 .. 10^5 rows) and predicate
// selectivity, with the columnar execution layer on and off
// (ARIEL_COLUMNAR=1 vs 0 — the bench sets the env var per point, so each
// Database resolves the master switch exactly the way a user run would).
//
// The row path evaluates the compiled predicate on a scratch row per tuple
// and deep-copies every projected Value; the columnar path evaluates the
// vectorized prefix over the relation's cached ColumnBatch (one typed loop
// per conjunct) and only materializes survivors. The gap therefore widens
// as selectivity drops. Results are identical in both modes by
// construction (the kernels replicate Value::Compare bit-for-bit).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/paper_workload.h"
#include "util/timer.h"

namespace {

using namespace ariel;
using namespace ariel::bench;

constexpr int kValDomain = 1000;

struct Point {
  int size = 0;
  int sel_pct = 0;   // nominal selectivity, percent
  bool columnar = false;
  double rows_per_sec = 0;
  size_t hits = 0;
};

Point RunPoint(int size, int sel_pct, bool columnar) {
  // The env var is the master switch (it overwrites the option), so flip it
  // the way an A/B harness would.
  setenv("ARIEL_COLUMNAR", columnar ? "1" : "0", /*overwrite=*/1);
  DatabaseOptions options;
  Database db(options);
  CheckOk(db.Execute("create data (id = int, val = int, pad = string)")
              .status(),
          "create data");
  HeapRelation* data = db.catalog().GetRelation("data");
  for (int i = 0; i < size; ++i) {
    CheckOk(db.transitions()
                .Insert(data, Tuple(std::vector<Value>{
                                  Value::Int(i),
                                  Value::Int((i * 131) % kValDomain),
                                  Value::String("row" + std::to_string(i))}))
                .status(),
            "populate data");
  }

  const std::string query = "retrieve (d.id, d.val) from d in data where "
                            "d.val < " +
                            std::to_string(kValDomain * sel_pct / 100);
  // Warm up once (builds the column cache on the columnar path; the timed
  // loop then measures steady-state scans, which is what a rule cascade
  // re-running the same scan sees).
  CommandResult warm = CheckOk(db.Execute(query), "warmup scan");
  const size_t hits = warm.rows.has_value() ? warm.rows->num_rows() : 0;

  // Size the trial count so every point runs long enough to time.
  const int trials = size >= 100000 ? 20 : size >= 10000 ? 100 : 400;
  Timer timer;
  for (int t = 0; t < trials; ++t) {
    CommandResult r = CheckOk(db.Execute(query), "timed scan");
    if (!r.rows.has_value() || r.rows->num_rows() != hits) {
      std::fprintf(stderr, "scan_throughput: result drifted between runs\n");
      std::exit(1);
    }
  }
  const double seconds = timer.ElapsedSeconds();

  Point p;
  p.size = size;
  p.sel_pct = sel_pct;
  p.columnar = columnar;
  p.hits = hits;
  p.rows_per_sec =
      seconds > 0 ? static_cast<double>(size) * trials / seconds : 0;
  return p;
}

}  // namespace

int main() {
  BenchReporter reporter("scan_throughput");
  const bool smoke = SmokeMode();
  const std::vector<int> sizes =
      smoke ? std::vector<int>{100, 1000}
            : std::vector<int>{100, 1000, 10000, 100000};
  const std::vector<int> selectivities =
      smoke ? std::vector<int>{10} : std::vector<int>{1, 10, 50, 90};

  std::printf("=== scan throughput: columnar batch vs row-at-a-time ===\n");
  std::printf("(retrieve with one band predicate over data[N]; rows/s = "
              "tuples scanned per second)\n");
  std::printf("%-9s %-7s %-9s %-14s %-14s %-9s\n", "size", "sel%", "hits",
              "row (r/s)", "column (r/s)", "speedup");
  for (int size : sizes) {
    for (int sel : selectivities) {
      Point row = RunPoint(size, sel, /*columnar=*/false);
      Point col = RunPoint(size, sel, /*columnar=*/true);
      const double speedup =
          row.rows_per_sec > 0 ? col.rows_per_sec / row.rows_per_sec : 0;
      std::printf("%-9d %-7d %-9zu %-14.0f %-14.0f %-9.2f\n", size, sel,
                  row.hits, row.rows_per_sec, col.rows_per_sec, speedup);
      const std::string key =
          "n" + std::to_string(size) + "_sel" + std::to_string(sel);
      reporter.AddResult(key + "_row_rows_per_sec", row.rows_per_sec);
      reporter.AddResult(key + "_col_rows_per_sec", col.rows_per_sec);
      reporter.AddResult(key + "_speedup", speedup);
    }
  }
  std::printf("\nExpected shape: the columnar path pulls ahead as N grows\n"
              "(batch build amortizes across re-scans) and as selectivity\n"
              "drops (survivor-only materialization skips the per-tuple\n"
              "Value deep copies the row path pays on every hit).\n");
  return 0;
}
